package engine

import (
	"math"
	"strings"
	"testing"

	"rankopt/internal/core"
	"rankopt/internal/plan"
)

// goldenAnalyze is the byte-exact EXPLAIN ANALYZE tree for the seeded 3-way
// rank join below (workload.RankedSet seed 11, see testEngine). Regenerate by
// printing plan.FormatAnalyze(resp.Plan, resp.Analysis, false) when the depth
// model, formatting, or workload generator deliberately changes.
const goldenAnalyze = `EXPLAIN ANALYZE (k=10)
Limit(10)  (rows est=10 act=10 err=0.0%)
  Rank(1*T1.score + 1*T2.score + 1*T3.score)  (rows est=10 act=10 err=0.0%)
    HRJN(T3.key = T2.key)  (rows est=10 act=10 err=0.0%)
      depths: dL est=300 act=53 err=466.0% | dR est=23 act=52 err=56.7% | queue hwm=43 | pool hit=0 miss=49
      Sort(1*T3.score desc)  (rows est=300 act=53 err=466.0%)
        SeqScan(T3)  (rows est=2000 act=2000 err=0.0%)
      HRJN(T2.key = T1.key)  (rows est=23 act=52 err=56.7%)
        depths: dL est=95 act=116 err=18.2% | dR est=95 act=115 err=17.5% | queue hwm=74 | pool hit=0 miss=124
        Sort(1*T2.score desc)  (rows est=95 act=116 err=18.2%)
          SeqScan(T2)  (rows est=2000 act=2000 err=0.0%)
        Sort(1*T1.score desc)  (rows est=95 act=115 err=17.5%)
          SeqScan(T1)  (rows est=2000 act=2000 err=0.0%)
`

// TestAnalyzeGoldenTree pins the \analyze rendering end to end: a 3-way
// rank-join session with Analyze set must produce a stable tree whose
// rank-join lines carry estimated vs actual depths with relative errors.
func TestAnalyzeGoldenTree(t *testing.T) {
	eng := testEngine(t, core.Options{})
	resp := eng.Run(Request{
		ID:      "golden",
		SQL:     "SELECT * FROM T1, T2, T3 WHERE T1.key = T2.key AND T2.key = T3.key ORDER BY T1.score + T2.score + T3.score DESC LIMIT 10",
		Analyze: true,
	})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Analysis == nil {
		t.Fatal("Analyze request returned no Analysis")
	}
	got := plan.FormatAnalyze(resp.Plan, resp.Analysis, false)
	if got != goldenAnalyze {
		t.Errorf("analyze tree diverged from golden.\ngot:\n%s\nwant:\n%s", got, goldenAnalyze)
	}
	// The acceptance shape, independent of exact numbers: both rank joins
	// report est and act depths plus a relative error per side.
	if strings.Count(got, "depths: dL est=") != 2 {
		t.Errorf("expected 2 rank-join depth lines, got:\n%s", got)
	}
}

// TestAnalyzeWithTimesAddsTimings checks the timing variant renders sampled
// wall times without disturbing the tree shape (it is excluded from the
// golden comparison because times are nondeterministic).
func TestAnalyzeWithTimesAddsTimings(t *testing.T) {
	eng := testEngine(t, core.Options{})
	resp := eng.Run(Request{
		ID:      "timed",
		SQL:     "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5",
		Analyze: true,
	})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	got := plan.FormatAnalyze(resp.Plan, resp.Analysis, true)
	if !strings.Contains(got, "(open=") || !strings.Contains(got, "next≈") {
		t.Errorf("withTimes output missing timing fields:\n%s", got)
	}
}

// TestAnalyzeOffLeavesNoCollector ensures plain sessions pay nothing: no
// Analysis, no wrapped operators.
func TestAnalyzeOffLeavesNoCollector(t *testing.T) {
	eng := testEngine(t, core.Options{})
	resp := eng.Run(Request{ID: "plain", SQL: "SELECT * FROM T1 LIMIT 3"})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Analysis != nil {
		t.Fatal("non-analyze session carries an Analysis")
	}
}

// TestAnalyzeEmptyInput runs EXPLAIN ANALYZE over a plan whose filter
// eliminates every row — the zero-output estimator path. The session must
// finish cleanly with zero tuples, and every plan node (rank joins
// included) must carry finite, non-negative cardinality and depth
// estimates: the estimate.Propagate zero-OutCard short-circuit feeding
// NaN/Inf into EstDL/EstDR pre-sizing is exactly the regression this pins.
func TestAnalyzeEmptyInput(t *testing.T) {
	eng := testEngine(t, core.Options{})
	resp := eng.Run(Request{
		ID:      "empty",
		SQL:     "SELECT * FROM T1, T2 WHERE T1.key = T2.key AND T1.id < 0 ORDER BY T1.score + T2.score DESC LIMIT 10",
		Analyze: true,
	})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if len(resp.Tuples) != 0 {
		t.Fatalf("filter T1.id < 0 returned %d tuples", len(resp.Tuples))
	}
	if resp.Analysis == nil {
		t.Fatal("Analyze request returned no Analysis")
	}
	resp.Plan.Walk(func(n *plan.Node) {
		if math.IsNaN(n.Card) || math.IsInf(n.Card, 0) || n.Card < 0 {
			t.Errorf("%s: degenerate card estimate %v", n.Op, n.Card)
		}
		for _, v := range []float64{n.EstDL, n.EstDR} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Errorf("%s: degenerate depth estimate %v", n.Op, v)
			}
		}
	})
	// The rendered tree must also be well-formed (no NaN leaking into the
	// est columns the REPL shows).
	out := plan.FormatAnalyze(resp.Plan, resp.Analysis, false)
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("EXPLAIN ANALYZE rendered a degenerate estimate:\n%s", out)
	}
}

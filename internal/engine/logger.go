package engine

// This file is the engine's structured logging layer: a log/slog-based
// slow-query log. Sessions at or over Config.SlowQuery land as one WARN
// record carrying everything an operator needs to triage without re-running
// the query: the SQL, the latency, the plan-cache fingerprint and hit/miss,
// the optimizer's enumeration counters, the measured rank-join depths, and —
// for failed sessions — the abort cause from the robustness taxonomy.

import (
	"context"
	"errors"
	"log/slog"

	"rankopt/internal/exec"
)

// abortCause classifies a failed session's error by the robustness taxonomy,
// for logs and dashboards. Empty for nil errors.
func abortCause(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, exec.ErrDeadlineExceeded):
		return "deadline"
	case errors.Is(err, exec.ErrQueryCancelled):
		return "cancelled"
	case errors.Is(err, exec.ErrBudgetExceeded):
		return "budget"
	case errors.Is(err, ErrAdmissionTimeout):
		return "admission"
	default:
		return "error"
	}
}

// logSlow emits the slow-query record when the session qualifies.
func (e *Engine) logSlow(resp *Response) {
	if e.slowQuery <= 0 || resp.Elapsed < e.slowQuery || e.logger == nil {
		return
	}
	e.met.slowQueries.Add(1)
	attrs := make([]slog.Attr, 0, 12)
	attrs = append(attrs,
		slog.String("sql", resp.SQL),
		slog.Duration("elapsed", resp.Elapsed),
		slog.String("fingerprint", resp.Fingerprint),
		slog.Bool("cache_hit", resp.CacheHit),
		slog.Int("rows", len(resp.Tuples)),
		slog.Int("plans_generated", resp.PlansGenerated),
		slog.Int("plans_pruned", resp.PlansPruned),
	)
	for _, rj := range resp.RankJoins {
		attrs = append(attrs, slog.Group(rj.Op,
			slog.String("pred", rj.Pred),
			slog.Int("depth_l", rj.Stats.LeftDepth),
			slog.Int("depth_r", rj.Stats.RightDepth),
		))
	}
	if cause := abortCause(resp.Err); cause != "" {
		attrs = append(attrs,
			slog.String("abort", cause),
			slog.String("error", resp.Err.Error()),
		)
	}
	e.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow query", attrs...)
}

package engine

import (
	"fmt"
	"strings"
	"testing"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/plan"
	"rankopt/internal/workload"
)

// partitionedCatalog builds the standard 3-table ranked catalog with every
// table hash-partitioned on the join key.
func partitionedCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat, names := workload.RankedSet(3, workload.RankedConfig{
		N: 2000, Selectivity: 0.01, Seed: 11,
	})
	for _, name := range names {
		spec := catalog.PartitionSpec{Column: "key", Kind: catalog.PartitionHash}
		if err := cat.SetPartition(name, spec); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// TestShardedMatchesUnsharded: for every shard count, the scatter-gather path
// must return exactly the tuples the single-engine path returns — same rows,
// same order, same global ranks.
func TestShardedMatchesUnsharded(t *testing.T) {
	cat := partitionedCatalog(t)
	base := New(cat, core.Options{})
	reqs := testRequests(9, false)
	want := make([]Response, len(reqs))
	for i, r := range reqs {
		want[i] = base.Run(r)
		if want[i].Err != nil {
			t.Fatal(want[i].Err)
		}
	}
	for _, shards := range []int{1, 2, 4} {
		eng := NewWithConfig(cat, Config{Shards: shards})
		if err := eng.ShardError(); err != nil {
			t.Fatal(err)
		}
		if eng.ShardCount() != shards {
			t.Fatalf("ShardCount = %d, want %d", eng.ShardCount(), shards)
		}
		for i, r := range reqs {
			got := eng.Run(r)
			if got.Err != nil {
				t.Fatalf("shards=%d %s: %v", shards, r.ID, got.Err)
			}
			if !got.Sharded || got.ShardStats == nil {
				t.Fatalf("shards=%d %s: did not take the sharded path", shards, r.ID)
			}
			if got.ShardStats.Shards != shards {
				t.Fatalf("shards=%d %s: stats report %d shards", shards, r.ID, got.ShardStats.Shards)
			}
			if fmt.Sprint(got.Columns) != fmt.Sprint(want[i].Columns) {
				t.Fatalf("shards=%d %s: columns %v, want %v", shards, r.ID, got.Columns, want[i].Columns)
			}
			if len(got.Tuples) != len(want[i].Tuples) {
				t.Fatalf("shards=%d %s: %d tuples, want %d", shards, r.ID, len(got.Tuples), len(want[i].Tuples))
			}
			for j := range got.Tuples {
				if got.Tuples[j].String() != want[i].Tuples[j].String() {
					t.Fatalf("shards=%d %s row %d:\n got %s\nwant %s",
						shards, r.ID, j, got.Tuples[j], want[i].Tuples[j])
				}
			}
		}
	}
}

// TestShardedFallbacks: sessions the coordinator cannot serve — explicit
// SELECT lists — must fall back to the single path, still answer correctly,
// and count under the non_shardable reason; EXPLAIN ANALYZE of a shardable
// query must now ride the sharded tier with per-shard analysis attached.
func TestShardedFallbacks(t *testing.T) {
	cat := partitionedCatalog(t)
	eng := NewWithConfig(cat, Config{Shards: 2})
	if err := eng.ShardError(); err != nil {
		t.Fatal(err)
	}
	projected := Request{SQL: "SELECT T1.id FROM T1, T2 WHERE T1.key = T2.key " +
		"ORDER BY T1.score + T2.score DESC LIMIT 5"}
	resp := eng.Run(projected)
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Sharded {
		t.Fatal("projected query must not take the sharded path")
	}
	analyzed := testRequests(1, false)[0]
	analyzed.Analyze = true
	resp = eng.Run(analyzed)
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !resp.Sharded {
		t.Fatal("EXPLAIN ANALYZE of a shardable query must execute sharded")
	}
	if resp.ShardAnalysis == nil || len(resp.ShardAnalysis.Shards) == 0 {
		t.Fatal("sharded EXPLAIN ANALYZE must attach per-shard analysis")
	}
	if resp.ShardStats == nil || len(resp.ShardStats.PerShard) != 2 {
		t.Fatalf("per-shard outcome rows missing: %+v", resp.ShardStats)
	}
	m := eng.Snapshot()
	if m.ShardFallbacks == 0 {
		t.Fatalf("fallback metric not incremented: %+v", m)
	}
	if m.ShardFallbacksByReason["non_shardable"] != m.ShardFallbacks {
		t.Fatalf("fallbacks must all be non_shardable: %+v", m.ShardFallbacksByReason)
	}
	out := plan.FormatShardedAnalyze(resp.Plan, resp.ShardAnalysis, false)
	for _, want := range []string{"sharded over 2 shards", "shard 0:", "shard 1:", "ceiling est="} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatShardedAnalyze missing %q:\n%s", want, out)
		}
	}
}

// TestShardErrorDisablesSharding: a catalog without partition specs cannot
// shard; the engine must record why and keep serving unsharded.
func TestShardErrorDisablesSharding(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 200, Selectivity: 0.1, Seed: 5})
	eng := NewWithConfig(cat, Config{Shards: 4})
	if eng.ShardError() == nil {
		t.Fatal("missing partition specs must surface in ShardError")
	}
	if eng.ShardCount() != 0 {
		t.Fatalf("ShardCount = %d, want 0", eng.ShardCount())
	}
	resp := eng.Run(Request{SQL: "SELECT * FROM T1, T2 WHERE T1.key = T2.key " +
		"ORDER BY T1.score + T2.score DESC LIMIT 5"})
	if resp.Err != nil || resp.Sharded {
		t.Fatalf("unsharded serving broken: err=%v sharded=%v", resp.Err, resp.Sharded)
	}
}

// TestShardedMetrics: the engine-level counters aggregate the per-query
// coordinator stats.
func TestShardedMetrics(t *testing.T) {
	cat := partitionedCatalog(t)
	eng := NewWithConfig(cat, Config{Shards: 4})
	if err := eng.ShardError(); err != nil {
		t.Fatal(err)
	}
	for _, r := range testRequests(6, false) {
		if resp := eng.Run(r); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	m := eng.Snapshot()
	if m.ShardedQueries != 6 {
		t.Fatalf("ShardedQueries = %d, want 6", m.ShardedQueries)
	}
	if m.ShardsStarted == 0 {
		t.Fatalf("ShardsStarted = 0: %+v", m)
	}
}

// TestShardedConcurrentSessions: concurrent sharded sessions over one engine
// must each match their sequential run — the shard workers of different
// sessions share nothing but the catalog. Run under -race this is the
// data-race check for the scatter-gather tier.
func TestShardedConcurrentSessions(t *testing.T) {
	cat := partitionedCatalog(t)
	eng := NewWithConfig(cat, Config{Shards: 4})
	if err := eng.ShardError(); err != nil {
		t.Fatal(err)
	}
	reqs := testRequests(16, false)
	want := stripElapsed(eng.RunAll(reqs, 1))
	got := stripElapsed(eng.RunAll(reqs, 8))
	for i := range got {
		if got[i].Err != nil {
			t.Fatalf("%s: %v", reqs[i].ID, got[i].Err)
		}
		if len(got[i].Tuples) != len(want[i].Tuples) {
			t.Fatalf("%s: %d tuples, want %d", reqs[i].ID, len(got[i].Tuples), len(want[i].Tuples))
		}
		for j := range got[i].Tuples {
			if got[i].Tuples[j].String() != want[i].Tuples[j].String() {
				t.Fatalf("%s row %d diverged under concurrency", reqs[i].ID, j)
			}
		}
	}
}

package engine

import (
	"math"
	"strings"
	"testing"

	"rankopt/internal/catalog"
	"rankopt/internal/exec"
	"rankopt/internal/plan"
	"rankopt/internal/workload"
)

// goldenShardedAnalyze is the byte-exact sharded EXPLAIN ANALYZE for the
// seeded 2-shard workload below. k exceeds the total join output, so both
// shards run to exhaustion — the only shard schedule with deterministic
// per-shard pull counts (early-stops depend on coordinator timing).
// Regenerate by printing plan.FormatShardedAnalyze(resp.Plan,
// resp.ShardAnalysis, false) when the depth model, formatting, or workload
// generator deliberately changes.
const goldenShardedAnalyze = `EXPLAIN ANALYZE (k=20000, sharded over 2 shards)
ShardMerge  (started=2 pruned=0 early_stopped=0 exhausted=2 pulled=8032 saved=0 kth=0.010)
  shard 0: exhausted  ceiling est=1.981 bound act=0.024 pulled=1037
    Limit(20000)  (rows est=8000 act=1037 err=671.5%)
      Rank(1*T1.score + 1*T2.score)  (rows est=8000 act=1037 err=671.5%)
        Sort(1*T1.score + 1*T2.score desc)  (rows est=8000 act=1037 err=671.5%)
          HashJoin(T2.key = T1.key)  (rows est=8000 act=1037 err=671.5%)
            SeqScan(T2)  (rows est=400 act=60 err=566.7%)
            SeqScan(T1)  (rows est=400 act=52 err=669.2%)
  shard 1: exhausted  ceiling est=2.000 bound act=0.010 pulled=6995
    Limit(20000)  (rows est=8000 act=6995 err=14.4%)
      Rank(1*T1.score + 1*T2.score)  (rows est=8000 act=6995 err=14.4%)
        Sort(1*T1.score + 1*T2.score desc)  (rows est=8000 act=6995 err=14.4%)
          HashJoin(T2.key = T1.key)  (rows est=8000 act=6995 err=14.4%)
            SeqScan(T2)  (rows est=400 act=340 err=17.6%)
            SeqScan(T1)  (rows est=400 act=348 err=14.9%)
`

// TestShardedAnalyzeGoldenTree pins the sharded EXPLAIN ANALYZE rendering
// end to end: the coordinator header with its merge counters, one shard
// table row per shard carrying the a-priori ceiling (est) against the live
// bound at decision time (act), and each shard's analyzed pipeline beneath
// its row.
func TestShardedAnalyzeGoldenTree(t *testing.T) {
	cat, names := workload.RankedSet(2, workload.RankedConfig{N: 400, Selectivity: 0.05, Seed: 7})
	for _, name := range names {
		spec := catalog.PartitionSpec{Column: "key", Kind: catalog.PartitionHash}
		if err := cat.SetPartition(name, spec); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewWithConfig(cat, Config{Shards: 2})
	if err := eng.ShardError(); err != nil {
		t.Fatal(err)
	}
	resp := eng.Run(Request{
		ID:      "sharded-golden",
		SQL:     "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 20000",
		Analyze: true,
	})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !resp.Sharded || resp.ShardAnalysis == nil {
		t.Fatalf("shardable EXPLAIN ANALYZE must execute sharded with analysis (sharded=%v)", resp.Sharded)
	}
	got := plan.FormatShardedAnalyze(resp.Plan, resp.ShardAnalysis, false)
	if got != goldenShardedAnalyze {
		t.Errorf("sharded analyze diverged from golden.\ngot:\n%s\nwant:\n%s", got, goldenShardedAnalyze)
	}
}

// TestShardedAnalyzeDegenerateRows renders synthetic coordinator stats: a
// pruned shard (never started, -Inf ceiling), a shard with no provable
// ceiling (+Inf), and an aborted shard with no recorded bound (NaN). The
// table must stay well-formed — named causes, no raw NaN, the never-started
// marker on rows without a pipeline.
func TestShardedAnalyzeDegenerateRows(t *testing.T) {
	root := &plan.Node{Op: plan.OpLimit, K: 5, Card: 5, Children: []*plan.Node{
		{Op: plan.OpRank, Card: 5, Children: []*plan.Node{
			{Op: plan.OpSeqScan, Table: "T1", Card: 100},
		}},
	}}
	sa := &plan.ShardedAnalysis{Stats: exec.ShardMergeStats{
		Shards: 3, Started: 2, Pruned: 1, KthScore: math.NaN(),
		PerShard: []exec.ShardOutcome{
			{Shard: 0, Ceiling: math.Inf(-1), Bound: math.Inf(-1), Cause: exec.ShardCausePruned},
			{Shard: 1, Ceiling: math.Inf(1), Bound: 0.5, Pulled: 7, Cause: exec.ShardCauseExhausted},
			{Shard: 2, Ceiling: 1.25, Bound: math.NaN()},
		},
	}}
	out := plan.FormatShardedAnalyze(root, sa, false)
	for _, want := range []string{
		"kth=none",
		"shard 0: pruned  ceiling est=-Inf bound act=-Inf pulled=0  (never started)",
		"shard 1: exhausted  ceiling est=+Inf bound act=0.500 pulled=7  (never started)",
		"shard 2: aborted  ceiling est=1.250 bound act=none pulled=0  (never started)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

package engine

import (
	"fmt"
	"reflect"
	"testing"

	"rankopt/internal/core"
	"rankopt/internal/workload"
)

func testEngine(t *testing.T, opts core.Options) *Engine {
	t.Helper()
	cat, _ := workload.RankedSet(3, workload.RankedConfig{
		N: 2000, Selectivity: 0.01, Seed: 11,
	})
	return New(cat, opts)
}

// testRequests builds a mixed batch: 2-way and 3-way ranked joins with
// varying k, plus deliberately broken queries to exercise error capture.
func testRequests(n int, withErrors bool) []Request {
	shapes := []string{
		"SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT %d",
		"SELECT * FROM T2, T3 WHERE T2.key = T3.key ORDER BY T2.score + T3.score DESC LIMIT %d",
		"SELECT * FROM T1, T2, T3 WHERE T1.key = T2.key AND T2.key = T3.key ORDER BY T1.score + T2.score + T3.score DESC LIMIT %d",
	}
	reqs := make([]Request, n)
	for i := range reqs {
		sql := fmt.Sprintf(shapes[i%len(shapes)], 3+i%5)
		if withErrors && i%7 == 3 {
			sql = "SELECT FROM WHERE" // parse error
		}
		reqs[i] = Request{ID: fmt.Sprintf("q%d", i), SQL: sql}
	}
	return reqs
}

// TestRunSession checks one full session end to end: results arrive in
// descending combined-score order, stats cover the plan's rank joins, and
// the optimizer counters are populated.
func TestRunSession(t *testing.T) {
	eng := testEngine(t, core.Options{})
	resp := eng.Run(Request{ID: "s1", SQL: testRequests(1, false)[0].SQL})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if len(resp.Tuples) == 0 {
		t.Fatal("no results")
	}
	if resp.PlansGenerated == 0 || resp.PlansKept == 0 {
		t.Errorf("optimizer counters empty: generated=%d kept=%d", resp.PlansGenerated, resp.PlansKept)
	}
	if len(resp.Columns) != len(resp.Tuples[0]) {
		t.Errorf("%d columns for %d-wide tuples", len(resp.Columns), len(resp.Tuples[0]))
	}
	for _, rj := range resp.RankJoins {
		if rj.Stats.LeftDepth == 0 && rj.Stats.RightDepth == 0 {
			t.Errorf("rank join %s(%s) reports zero depths", rj.Op, rj.Pred)
		}
	}
}

// TestRunCapturesErrors: malformed queries must surface in Response.Err, not
// crash the worker or poison neighboring sessions.
func TestRunCapturesErrors(t *testing.T) {
	eng := testEngine(t, core.Options{})
	for _, sql := range []string{
		"SELECT FROM WHERE",
		"SELECT * FROM NoSuchTable ORDER BY NoSuchTable.score DESC LIMIT 5",
	} {
		resp := eng.Run(Request{SQL: sql})
		if resp.Err == nil {
			t.Errorf("%q: error not captured", sql)
		}
	}
}

// stripElapsed zeroes the fields that legitimately vary between runs —
// wall-clock time, the session-private plan pointer, and whether the plan
// cache happened to be warm — so concurrent and sequential responses
// compare equal on what matters: tuples, columns, stats, and errors.
func stripElapsed(rs []Response) []Response {
	out := append([]Response(nil), rs...)
	for i := range out {
		out[i].Elapsed = 0
		out[i].Plan = nil
		out[i].CacheHit = false
	}
	return out
}

// TestConcurrentSessionsMatchSequential is the PR's headline race test: at
// least 8 workers run a mixed batch (including failing queries) over one
// shared catalog, and every response — tuples, stats, errors — must match
// the sequential run. Run under -race this doubles as the data-race check
// on the shared catalog, B+trees, and per-session optimizer state.
func TestConcurrentSessionsMatchSequential(t *testing.T) {
	eng := testEngine(t, core.Options{})
	reqs := testRequests(24, true)
	want := stripElapsed(eng.RunAll(reqs, 1))
	for _, workers := range []int{2, 8, 16} {
		got := stripElapsed(eng.RunAll(reqs, workers))
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d responses, want %d", workers, len(got), len(want))
		}
		for i := range got {
			// Errors carry no stable identity; compare presence and text.
			ge, we := got[i].Err, want[i].Err
			if (ge == nil) != (we == nil) || (ge != nil && ge.Error() != we.Error()) {
				t.Errorf("workers=%d %s: err %v, want %v", workers, reqs[i].ID, ge, we)
				continue
			}
			g, w := got[i], want[i]
			g.Err, w.Err = nil, nil
			if !reflect.DeepEqual(g, w) {
				t.Errorf("workers=%d %s: response diverged from sequential run", workers, reqs[i].ID)
			}
		}
	}
}

// TestConcurrentSessionsWithParallelOptimizer layers both levels of
// parallelism: concurrent sessions whose optimizers each enumerate DP
// levels with their own worker pools.
func TestConcurrentSessionsWithParallelOptimizer(t *testing.T) {
	seqEng := testEngine(t, core.Options{})
	parEng := testEngine(t, core.Options{Workers: 4})
	reqs := testRequests(12, false)
	want := stripElapsed(seqEng.RunAll(reqs, 1))
	got := stripElapsed(parEng.RunAll(reqs, 8))
	for i := range got {
		if got[i].Err != nil {
			t.Fatalf("%s: %v", reqs[i].ID, got[i].Err)
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: parallel-optimizer response diverged", reqs[i].ID)
		}
	}
}

// TestPool exercises the long-lived serving front: submissions from many
// goroutines, per-submission response channels, idempotent Close.
func TestPool(t *testing.T) {
	eng := testEngine(t, core.Options{})
	pool := eng.NewPool(8)
	reqs := testRequests(16, true)
	chans := make([]<-chan Response, len(reqs))
	for i, r := range reqs {
		chans[i] = pool.Submit(r)
	}
	want := stripElapsed(eng.RunAll(reqs, 1))
	for i, ch := range chans {
		got := <-ch
		got.Elapsed = 0
		got.Plan = nil
		got.CacheHit = false
		ge, we := got.Err, want[i].Err
		if (ge == nil) != (we == nil) {
			t.Errorf("%s: err %v, want %v", reqs[i].ID, ge, we)
			continue
		}
		got.Err, want[i].Err = nil, nil
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("%s: pooled response diverged from sequential run", reqs[i].ID)
		}
	}
	pool.Close()
	pool.Close() // idempotent
}

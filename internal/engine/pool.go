package engine

import (
	"errors"
	"sync"
)

// ErrPoolClosed is the Response.Err of a session submitted after Close.
var ErrPoolClosed = errors.New("engine: pool closed")

// Pool is a long-lived serving front: a fixed set of session workers
// draining a submission channel. Use it when sessions arrive over time;
// for a fixed batch, Engine.RunAll is simpler.
type Pool struct {
	eng   *Engine
	items chan poolItem
	wg    sync.WaitGroup
	once  sync.Once

	// mu guards closed and, held shared around every channel send, keeps
	// Close from closing the channel while a Submit is mid-send — the
	// shutdown race that would otherwise panic the submitting goroutine.
	mu     sync.RWMutex
	closed bool
}

type poolItem struct {
	req Request
	out chan<- Response
}

// NewPool starts the given number of session workers (at least one).
func (e *Engine) NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{eng: e, items: make(chan poolItem)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for it := range p.items {
				it.out <- p.eng.Run(it.req)
			}
		}()
	}
	return p
}

// Submit enqueues a session and returns a channel that delivers exactly one
// Response. Submit blocks while every worker is busy. Submitting to a closed
// pool must not crash a serving front caller, so instead of the old
// send-on-closed-channel panic the returned channel delivers an error
// Response with Err == ErrPoolClosed.
func (p *Pool) Submit(req Request) <-chan Response {
	out := make(chan Response, 1)
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		out <- Response{ID: req.ID, SQL: req.SQL, Err: ErrPoolClosed}
		return out
	}
	p.items <- poolItem{req: req, out: out}
	p.mu.RUnlock()
	return out
}

// Close stops accepting sessions and waits for the in-flight ones to finish
// delivering. Safe to call more than once and concurrently with Submit:
// submissions that won the race are served, later ones get ErrPoolClosed.
func (p *Pool) Close() {
	p.once.Do(func() {
		p.mu.Lock()
		p.closed = true
		close(p.items)
		p.mu.Unlock()
	})
	p.wg.Wait()
}

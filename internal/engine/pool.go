package engine

import "sync"

// Pool is a long-lived serving front: a fixed set of session workers
// draining a submission channel. Use it when sessions arrive over time;
// for a fixed batch, Engine.RunAll is simpler.
type Pool struct {
	eng   *Engine
	items chan poolItem
	wg    sync.WaitGroup
	once  sync.Once
}

type poolItem struct {
	req Request
	out chan<- Response
}

// NewPool starts the given number of session workers (at least one).
func (e *Engine) NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{eng: e, items: make(chan poolItem)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for it := range p.items {
				it.out <- p.eng.Run(it.req)
			}
		}()
	}
	return p
}

// Submit enqueues a session and returns a channel that delivers exactly one
// Response. Submit blocks while every worker is busy; submitting to a closed
// pool panics, mirroring sends on closed channels.
func (p *Pool) Submit(req Request) <-chan Response {
	out := make(chan Response, 1)
	p.items <- poolItem{req: req, out: out}
	return out
}

// Close stops accepting sessions and waits for the in-flight ones to finish
// delivering. Safe to call more than once.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.items) })
	p.wg.Wait()
}

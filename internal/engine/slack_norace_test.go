//go:build !race

package engine

// promptSlack scales the prompt-return bounds in the cancellation tests.
// Race builds multiply every memory access by instrumentation and make GC
// assists an order of magnitude longer, so on a small CI box a cancelled
// query's goroutine can stall for hundreds of milliseconds between
// observing the deadline and returning; the race variant of this constant
// loosens the bounds accordingly without weakening the normal-build gate.
const promptSlack = 1

package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rankopt/internal/core"
	"rankopt/internal/exec"
)

// waitForLiveQuery polls the registry until a live session in the executing
// or merging state appears (or the deadline passes), returning its info.
func waitForLiveQuery(t *testing.T, eng *Engine, deadline time.Duration) (QueryInfo, bool) {
	t.Helper()
	until := time.Now().Add(deadline)
	for time.Now().Before(until) {
		for _, qi := range eng.Queries() {
			if qi.State == "executing" || qi.State == "merging" {
				return qi, true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return QueryInfo{}, false
}

// TestQueryRegistryLifecycle runs sessions to completion and checks the
// registry's recent ring: ascending IDs, terminal states, the top-k bound,
// and the rank-aware emitted count.
func TestQueryRegistryLifecycle(t *testing.T) {
	eng := testEngine(t, core.Options{})
	good := testRequests(1, false)[0]
	good.ID = "client-1"
	if resp := eng.Run(good); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := eng.Run(Request{SQL: "SELECT * FROM"}); resp.Err == nil {
		t.Fatal("parse error expected")
	}
	qs := eng.Queries()
	if len(qs) != 2 {
		t.Fatalf("registry holds %d sessions, want 2: %+v", len(qs), qs)
	}
	if qs[0].ID >= qs[1].ID {
		t.Fatalf("recent ring not in admission order: %d then %d", qs[0].ID, qs[1].ID)
	}
	ok, bad := qs[0], qs[1]
	if ok.State != "done" || ok.ClientID != "client-1" || ok.SQL != good.SQL {
		t.Errorf("finished session row wrong: %+v", ok)
	}
	if ok.Emitted == 0 || ok.K == 0 || ok.Emitted > ok.K {
		t.Errorf("rank-aware progress wrong: emitted=%d k=%d", ok.Emitted, ok.K)
	}
	if ok.ElapsedMillis <= 0 {
		t.Errorf("finished session has no elapsed time: %+v", ok)
	}
	if bad.State != "aborted" || bad.Error == "" {
		t.Errorf("failed session row wrong: %+v", bad)
	}
}

// TestCancelQueryByID is the acceptance check for cancel-by-id: a running
// session observed on the registry is aborted through its registry ID and
// surfaces exec.ErrQueryCancelled.
func TestCancelQueryByID(t *testing.T) {
	eng := heavyEngine(t, Config{})
	if resp := eng.Run(Request{SQL: heavySQL, ExplainOnly: true}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	done := make(chan Response, 1)
	go func() { done <- eng.Run(Request{ID: "victim", SQL: heavySQL}) }()
	qi, found := waitForLiveQuery(t, eng, 2*time.Second)
	if !found {
		t.Fatal("running session never appeared on the registry")
	}
	if !eng.CancelQuery(qi.ID) {
		t.Fatalf("CancelQuery(%d) found no live session", qi.ID)
	}
	resp := <-done
	if !errors.Is(resp.Err, exec.ErrQueryCancelled) {
		t.Fatalf("cancelled session returned %v, want ErrQueryCancelled", resp.Err)
	}
	if eng.CancelQuery(qi.ID) {
		t.Error("finished session must no longer be cancellable")
	}
	for _, q := range eng.Queries() {
		if q.ID == qi.ID && q.State != "aborted" {
			t.Errorf("cancelled session state = %s, want aborted", q.State)
		}
	}
}

// TestQueriesEndpoint drives /debug/queries over HTTP: the JSON document
// shows a running query's progress, cancel-by-id aborts it, bad and unknown
// IDs answer 400 and 404.
func TestQueriesEndpoint(t *testing.T) {
	eng := heavyEngine(t, Config{})
	if resp := eng.Run(Request{SQL: heavySQL, ExplainOnly: true}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	srv := httptest.NewServer(eng.DebugMux())
	defer srv.Close()

	done := make(chan Response, 1)
	go func() { done <- eng.Run(Request{ID: "http-victim", SQL: heavySQL}) }()
	qi, found := waitForLiveQuery(t, eng, 2*time.Second)
	if !found {
		t.Fatal("running session never appeared on the registry")
	}

	hr, err := srv.Client().Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Queries []QueryInfo `json:"queries"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/queries not valid JSON: %v", err)
	}
	hr.Body.Close()
	var live *QueryInfo
	for i := range doc.Queries {
		if doc.Queries[i].ID == qi.ID {
			live = &doc.Queries[i]
		}
	}
	if live == nil {
		t.Fatalf("running session %d missing from /debug/queries: %+v", qi.ID, doc.Queries)
	}
	if live.SQL != heavySQL || live.ClientID != "http-victim" {
		t.Errorf("live row wrong: %+v", live)
	}

	cr, err := srv.Client().Post(fmt.Sprintf("%s/debug/queries/%d/cancel", srv.URL, qi.ID), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	if cr.StatusCode != http.StatusOK {
		t.Fatalf("cancel of live session answered %d", cr.StatusCode)
	}
	resp := <-done
	if !errors.Is(resp.Err, exec.ErrQueryCancelled) {
		t.Fatalf("HTTP-cancelled session returned %v, want ErrQueryCancelled", resp.Err)
	}

	cr, err = srv.Client().Post(srv.URL+"/debug/queries/999999/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	if cr.StatusCode != http.StatusNotFound {
		t.Errorf("cancel of unknown id answered %d, want 404", cr.StatusCode)
	}
	cr, err = srv.Client().Post(srv.URL+"/debug/queries/notanid/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	if cr.StatusCode != http.StatusBadRequest {
		t.Errorf("cancel of malformed id answered %d, want 400", cr.StatusCode)
	}
}

// TestRegistryShardedProgress: a sharded session's registry row reports the
// fan-out — sharded flag, total shard count — after it finishes.
func TestRegistryShardedProgress(t *testing.T) {
	cat := partitionedCatalog(t)
	eng := NewWithConfig(cat, Config{Shards: 2})
	if err := eng.ShardError(); err != nil {
		t.Fatal(err)
	}
	if resp := eng.Run(testRequests(1, false)[0]); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	qs := eng.Queries()
	if len(qs) != 1 {
		t.Fatalf("registry holds %d sessions, want 1", len(qs))
	}
	qi := qs[0]
	if !qi.Sharded || qi.ShardsTotal != 2 || qi.ShardsDone != qi.ShardsTotal-int32(qi.ShardsLive) {
		t.Errorf("sharded progress wrong: %+v", qi)
	}
	if qi.State != "done" || qi.Emitted == 0 {
		t.Errorf("sharded session row wrong: %+v", qi)
	}
}

// TestQueryRegistryStress is the -race workout: concurrent sessions,
// registry snapshots, and blind cancel-by-id sweeps race against each other,
// and afterwards the goroutine count settles back and the live map drains.
func TestQueryRegistryStress(t *testing.T) {
	before := runtime.NumGoroutine()
	eng := heavyEngine(t, Config{MaxConcurrent: 4})
	if resp := eng.Run(Request{SQL: heavySQL, ExplainOnly: true}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	stop := make(chan struct{})
	var obs sync.WaitGroup
	// Snapshot and cancel sweepers race with the sessions below.
	for w := 0; w < 2; w++ {
		obs.Add(1)
		go func() {
			defer obs.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, qi := range eng.Queries() {
					if qi.State == "executing" || qi.State == "merging" {
						eng.CancelQuery(qi.ID)
					}
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := eng.Run(Request{
				ID: fmt.Sprintf("s%d", i), SQL: heavySQL,
				Deadline: time.Now().Add(time.Duration(20+i) * time.Millisecond),
			})
			if resp.Err != nil && !errors.Is(resp.Err, exec.ErrQueryCancelled) &&
				!errors.Is(resp.Err, exec.ErrDeadlineExceeded) {
				t.Errorf("s%d: unexpected error %v", i, resp.Err)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	obs.Wait()
	// No session may remain live once every Run returned.
	for _, qi := range eng.Queries() {
		switch qi.State {
		case "done", "aborted":
		default:
			t.Errorf("session %d stuck in state %s", qi.ID, qi.State)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after stress", before, runtime.NumGoroutine())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// promLint statically checks a Prometheus text exposition: every series
// belongs to a declared family, no family is declared twice, no series is
// duplicated, and histogram bucket counts are cumulative.
func promLint(t *testing.T, text string) {
	t.Helper()
	families := map[string]string{}
	series := map[string]bool{}
	var lastFamily string
	type bucketState struct {
		last    uint64
		lastKey string
	}
	buckets := map[string]*bucketState{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("line %d: malformed TYPE comment %q", ln+1, line)
				continue
			}
			name, kind := parts[2], parts[3]
			if _, dup := families[name]; dup {
				t.Errorf("line %d: family %s declared twice", ln+1, name)
			}
			families[name] = kind
			lastFamily = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Errorf("line %d: malformed sample %q", ln+1, line)
			continue
		}
		key := line[:sp]
		name := key
		if b := strings.IndexByte(key, '{'); b >= 0 {
			name = key[:b]
			if !strings.HasSuffix(key, "}") {
				t.Errorf("line %d: malformed labels in %q", ln+1, key)
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) && families[strings.TrimSuffix(name, suffix)] == "histogram" {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if _, ok := families[base]; !ok {
			t.Errorf("line %d: series %s has no TYPE declaration", ln+1, name)
		}
		if base != lastFamily {
			t.Errorf("line %d: series %s appears under family %s", ln+1, name, lastFamily)
		}
		if series[key] {
			t.Errorf("line %d: duplicate series %q", ln+1, key)
		}
		series[key] = true
		if strings.HasSuffix(name, "_bucket") {
			// Cumulative within one labeled sub-histogram: group by the
			// labels minus le.
			group := key
			if i := strings.Index(group, "le="); i >= 0 {
				group = name + key[len(name):i]
			}
			var v uint64
			if _, err := fmt.Sscanf(line[sp+1:], "%d", &v); err != nil {
				t.Errorf("line %d: bucket count not an integer: %q", ln+1, line)
				continue
			}
			bs := buckets[group]
			if bs == nil {
				bs = &bucketState{}
				buckets[group] = bs
			}
			if v < bs.last {
				t.Errorf("line %d: bucket counts not cumulative (%s: %d after %d in %s)",
					ln+1, key, v, bs.last, bs.lastKey)
			}
			bs.last, bs.lastKey = v, key
		}
	}
}

// TestMetricsTextLints serves /metrics after mixed traffic — sharded,
// analyzed, greedy-fallback, errored — and lints the exposition: families
// declared once, no duplicate or orphan series, cumulative histograms, and
// the new labeled counter families present.
func TestMetricsTextLints(t *testing.T) {
	cat := partitionedCatalog(t)
	eng := NewWithConfig(cat, Config{Shards: 2, Options: core.Options{Planner: core.PlannerGreedy}})
	if err := eng.ShardError(); err != nil {
		t.Fatal(err)
	}
	for _, r := range testRequests(4, true) {
		eng.Run(r)
	}
	areq := testRequests(1, false)[0]
	areq.Analyze = true
	if resp := eng.Run(areq); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	// A single-table query trips the greedy fallback taxonomy.
	if resp := eng.Run(Request{SQL: "SELECT * FROM T1 ORDER BY T1.score DESC LIMIT 3"}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	srv := httptest.NewServer(eng.DebugMux())
	defer srv.Close()
	hr, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(hr.Body)
	hr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	promLint(t, text)
	for _, want := range []string{
		`raqo_shard_fallbacks_total{reason="non_shardable"}`,
		`raqo_shard_fallbacks_total{reason="analyze"} 0`,
		`raqo_greedy_fallbacks_total{reason="single_table"} 1`,
		`raqo_operator_depth_bucket{op="HRJN",le="+Inf"}`,
		`raqo_operator_depth_bucket{op="ShardMerge",le="+Inf"}`,
		`raqo_operator_latency_seconds_count{op="ShardMerge"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

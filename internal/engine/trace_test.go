package engine

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rankopt/internal/core"
	"rankopt/internal/trace"
)

const tracedSQL = "SELECT * FROM T1, T2, T3 WHERE T1.key = T2.key AND T2.key = T3.key " +
	"ORDER BY T1.score + T2.score + T3.score DESC LIMIT 10"

// TestTracedSessionRecordsPipeline: a session with a span recorder must
// record the full pipeline (parse → fingerprint → optimize → instantiate →
// compile → execute), synthesize per-operator spans, attach the optimizer
// decision trace, and export valid Chrome trace-event JSON.
func TestTracedSessionRecordsPipeline(t *testing.T) {
	eng := testEngine(t, core.Options{})
	tr := trace.New(tracedSQL)
	resp := eng.Run(Request{ID: "traced", SQL: tracedSQL, Trace: tr})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.OptTrace == nil {
		t.Fatal("traced session returned no optimizer decision trace")
	}
	if resp.Fingerprint == "" {
		t.Error("traced session returned no fingerprint")
	}
	if resp.Analysis == nil {
		t.Error("traced session returned no operator analysis")
	}
	if resp.PlansPruned == 0 {
		t.Error("traced session reports no pruned plans on a 3-way rank join")
	}

	names := map[string]bool{}
	var operators int
	for _, sp := range tr.Spans() {
		names[sp.Name] = true
		if sp.Cat == "operator" {
			operators++
		}
	}
	for _, want := range []string{"session", "parse", "fingerprint", "optimize", "instantiate", "compile", "execute"} {
		if !names[want] {
			t.Errorf("trace missing %q span; recorded %v", want, names)
		}
	}
	if operators == 0 {
		t.Error("trace has no synthesized operator spans")
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome export is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) < 9 {
		t.Errorf("chrome export has %d events, want >= 9 (7 pipeline + operators + meta)", len(doc.TraceEvents))
	}

	// The decision trace renders the acceptance shape end to end.
	out := resp.OptTrace.Format()
	if !strings.Contains(out, "k*=") || !strings.Contains(out, "(First-N-Rows)") {
		t.Errorf("decision trace missing k* or First-N protection:\n%.600s", out)
	}
	if tr.Tree() == "" {
		t.Error("trace tree rendered empty")
	}
}

// TestTracedSessionReportsWouldHit: the traced path re-optimizes for the
// decision trace but must still report what the plan cache would have done,
// and must feed the cache so later untraced sessions hit.
func TestTracedSessionReportsWouldHit(t *testing.T) {
	eng := testEngine(t, core.Options{})
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5"
	if resp := eng.Run(Request{SQL: sql, Trace: trace.New(sql)}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	// The traced session stored its fresh template: an untraced rerun hits.
	resp := eng.Run(Request{SQL: sql})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !resp.CacheHit {
		t.Error("untraced rerun after traced session missed the plan cache")
	}
	// A second traced run records would_hit=true on its plan-cache span.
	tr := trace.New(sql)
	if resp := eng.Run(Request{SQL: sql, Trace: tr}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	var sawWouldHit bool
	for _, sp := range tr.Spans() {
		if sp.Name == "plan-cache" {
			for _, a := range sp.Args {
				if a.Key == "would_hit" && a.Val == "true" {
					sawWouldHit = true
				}
			}
		}
	}
	if !sawWouldHit {
		t.Error("second traced session did not record would_hit=true on the plan-cache span")
	}
}

// TestUntracedSessionCarriesNoTraceState: the default path must not pay for
// tracing — no decision trace, no analysis wrappers, no spans anywhere.
func TestUntracedSessionCarriesNoTraceState(t *testing.T) {
	eng := testEngine(t, core.Options{})
	resp := eng.Run(Request{SQL: "SELECT * FROM T1 LIMIT 3"})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.OptTrace != nil || resp.Analysis != nil {
		t.Error("untraced session carries trace state")
	}
	if eng.Snapshot().TracedQueries != 0 {
		t.Error("untraced session counted as traced")
	}
}

// TestSlowQueryLog: sessions over the threshold must land in the structured
// log with the triage fields, and count in the slow-query metric.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	eng := testEngineWithConfig(t, Config{
		SlowQuery: time.Nanosecond, // everything is slow
		Logger:    slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	resp := eng.Run(Request{SQL: tracedSQL})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	line := buf.String()
	if line == "" {
		t.Fatal("slow-query log recorded nothing")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &rec); err != nil {
		t.Fatalf("slow-query log is not JSON: %v\n%s", err, line)
	}
	if rec["msg"] != "slow query" {
		t.Errorf("log msg = %v, want \"slow query\"", rec["msg"])
	}
	for _, key := range []string{"sql", "elapsed", "fingerprint", "cache_hit", "rows", "plans_generated"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("slow-query record missing %q: %s", key, line)
		}
	}
	if got := eng.Snapshot().SlowQueries; got != 1 {
		t.Errorf("SlowQueries = %d, want 1", got)
	}
}

// TestSlowQueryLogAbortCause: failed sessions log their taxonomy cause.
func TestSlowQueryLogAbortCause(t *testing.T) {
	var buf bytes.Buffer
	eng := testEngineWithConfig(t, Config{
		SlowQuery: time.Nanosecond,
		Logger:    slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	resp := eng.Run(Request{SQL: tracedSQL, Deadline: time.Now().Add(-time.Second)})
	if resp.Err == nil {
		t.Fatal("expired deadline did not fail the session")
	}
	if !strings.Contains(buf.String(), `"abort":"deadline"`) {
		t.Errorf("slow-query record missing abort cause:\n%s", buf.String())
	}
}

// TestSlowQueryLogOff: with no threshold nothing is logged even when a
// logger is configured.
func TestSlowQueryLogOff(t *testing.T) {
	var buf bytes.Buffer
	eng := testEngineWithConfig(t, Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
	if resp := eng.Run(Request{SQL: "SELECT * FROM T1 LIMIT 3"}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if buf.Len() != 0 {
		t.Errorf("slow-query log fired without a threshold:\n%s", buf.String())
	}
}

// TestDebugMuxPprofAndRuntime: the debug mux must serve the pprof index and
// profiles, and /metrics must carry the runtime and optimizer gauges.
func TestDebugMuxPprofAndRuntime(t *testing.T) {
	eng := testEngine(t, core.Options{})
	if resp := eng.Run(Request{SQL: tracedSQL}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	srv := httptest.NewServer(eng.DebugMux())
	defer srv.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/goroutine"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := body.String()
	for _, want := range []string{
		"raqo_goroutines",
		"raqo_heap_alloc_bytes",
		"raqo_gc_cycles_total",
		"raqo_optimizer_runs_total 1",
		"raqo_optimizer_plans_generated_total",
		"raqo_optimizer_plans_pruned_total",
		"raqo_optimizer_plans_protected_total",
		"raqo_slow_queries_total",
		"raqo_traced_queries_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	m := eng.Snapshot()
	if m.Runtime.Goroutines <= 0 || m.Runtime.HeapAllocBytes == 0 {
		t.Errorf("runtime stats empty: %+v", m.Runtime)
	}
	if m.OptimizerRuns != 1 || m.PlansGenerated == 0 || m.PlansPruned == 0 {
		t.Errorf("optimizer aggregates not wired: %+v", m)
	}
}

// TestCachedRunsDoNotRecountOptimizer: plan-cache hits replay counters in
// the Response but must not inflate the engine-wide optimizer aggregates.
func TestCachedRunsDoNotRecountOptimizer(t *testing.T) {
	eng := testEngine(t, core.Options{})
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5"
	var gen int
	for i := 0; i < 3; i++ {
		resp := eng.Run(Request{SQL: sql})
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		gen = resp.PlansGenerated
	}
	if gen == 0 {
		t.Fatal("cache hits stopped replaying optimizer counters")
	}
	m := eng.Snapshot()
	if m.OptimizerRuns != 1 {
		t.Errorf("OptimizerRuns = %d after 1 miss + 2 hits, want 1", m.OptimizerRuns)
	}
	if m.PlansGenerated != uint64(gen) {
		t.Errorf("PlansGenerated aggregate = %d, want %d (one run)", m.PlansGenerated, gen)
	}
}

// testEngineWithConfig mirrors testEngine for explicit configs.
func testEngineWithConfig(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng := testEngine(t, cfg.Options)
	cfg.Options = eng.opts
	return NewWithConfig(eng.cat, cfg)
}

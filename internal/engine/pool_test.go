package engine

import (
	"errors"
	"sync"
	"testing"

	"rankopt/internal/core"
)

// TestPoolSubmitAfterClose is the regression test for the shutdown panic:
// Submit on a closed pool used to send on a closed channel and crash the
// submitting goroutine. It must now deliver an ErrPoolClosed response.
func TestPoolSubmitAfterClose(t *testing.T) {
	eng := testEngine(t, core.Options{})
	pool := eng.NewPool(2)
	pool.Close()

	resp := <-pool.Submit(Request{ID: "late", SQL: "SELECT * FROM T1 LIMIT 1"})
	if !errors.Is(resp.Err, ErrPoolClosed) {
		t.Fatalf("submit after close: err = %v, want ErrPoolClosed", resp.Err)
	}
	if resp.ID != "late" {
		t.Errorf("error response lost the request ID: %q", resp.ID)
	}
}

// TestPoolCloseSubmitRace hammers Close against concurrent Submits. Every
// submission must resolve to exactly one response — either a served result or
// ErrPoolClosed — with no panic and no hang.
func TestPoolCloseSubmitRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		eng := testEngine(t, core.Options{})
		pool := eng.NewPool(4)
		const submitters = 8

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				reqs := testRequests(4, false)
				for i, r := range reqs {
					resp := <-pool.Submit(r)
					if resp.Err != nil && !errors.Is(resp.Err, ErrPoolClosed) {
						t.Errorf("goroutine %d req %d: unexpected error %v", g, i, resp.Err)
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			pool.Close()
		}()
		close(start)
		wg.Wait()
		pool.Close() // still idempotent after the race
	}
}

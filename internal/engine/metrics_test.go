package engine

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rankopt/internal/core"
)

// TestSnapshotCountsSessions runs a mixed batch (including deliberate parse
// errors and one analyzed query) and checks the engine-wide counters add up.
func TestSnapshotCountsSessions(t *testing.T) {
	eng := testEngine(t, core.Options{})
	reqs := testRequests(14, true)
	var wantErrs, wantTuples uint64
	for _, r := range reqs {
		resp := eng.Run(r)
		if resp.Err != nil {
			wantErrs++
		}
		wantTuples += uint64(len(resp.Tuples))
	}
	aresp := eng.Run(Request{ID: "a", SQL: reqs[0].SQL, Analyze: true})
	if aresp.Err != nil {
		t.Fatal(aresp.Err)
	}
	wantTuples += uint64(len(aresp.Tuples))

	m := eng.Snapshot()
	if m.Queries != uint64(len(reqs))+1 {
		t.Errorf("Queries = %d, want %d", m.Queries, len(reqs)+1)
	}
	if m.Errors != wantErrs {
		t.Errorf("Errors = %d, want %d", m.Errors, wantErrs)
	}
	if m.Analyzed != 1 {
		t.Errorf("Analyzed = %d, want 1", m.Analyzed)
	}
	if m.TuplesReturned != wantTuples {
		t.Errorf("TuplesReturned = %d, want %d", m.TuplesReturned, wantTuples)
	}
	if m.AvgLatencyMillis <= 0 {
		t.Errorf("AvgLatencyMillis = %g, want > 0", m.AvgLatencyMillis)
	}
	if m.P50LatencyMillis <= 0 || m.P99LatencyMillis < m.P50LatencyMillis {
		t.Errorf("quantiles p50=%g p99=%g look wrong", m.P50LatencyMillis, m.P99LatencyMillis)
	}
	if len(m.LatencyBuckets) != numLatencyBuckets {
		t.Fatalf("%d latency buckets, want %d", len(m.LatencyBuckets), numLatencyBuckets)
	}
	last := m.LatencyBuckets[len(m.LatencyBuckets)-1]
	if last.UpperBoundMillis != -1 {
		t.Errorf("overflow bucket bound = %g, want -1 (+Inf)", last.UpperBoundMillis)
	}
	if last.CumulativeCount != m.Queries {
		t.Errorf("histogram total %d != queries %d", last.CumulativeCount, m.Queries)
	}
	for i := 1; i < len(m.LatencyBuckets); i++ {
		if m.LatencyBuckets[i].CumulativeCount < m.LatencyBuckets[i-1].CumulativeCount {
			t.Fatalf("cumulative counts not monotone at bucket %d", i)
		}
	}
}

// TestQuantileBound pins the fixed-bucket quantile estimate on a hand-built
// histogram: 90 sessions in the 1ms bucket, 10 in the 100ms bucket.
func TestQuantileBound(t *testing.T) {
	var m metrics
	for i := 0; i < 90; i++ {
		m.latency[bucketFor(800*time.Microsecond)].Add(1)
	}
	for i := 0; i < 10; i++ {
		m.latency[bucketFor(80*time.Millisecond)].Add(1)
	}
	if got := quantileBound(&m, 100, 0.50); got != 1.0 {
		t.Errorf("p50 = %gms, want 1", got)
	}
	if got := quantileBound(&m, 100, 0.99); got != 100.0 {
		t.Errorf("p99 = %gms, want 100", got)
	}
	if got := quantileBound(&m, 0, 0.99); got != 0 {
		t.Errorf("empty histogram p99 = %g, want 0", got)
	}
}

// TestDebugMuxEndpoints serves the counters over HTTP (stdlib only) and
// checks both exposition formats.
func TestDebugMuxEndpoints(t *testing.T) {
	eng := testEngine(t, core.Options{})
	for _, r := range testRequests(6, false) {
		if resp := eng.Run(r); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	srv := httptest.NewServer(eng.DebugMux())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"raqo_queries_total 6",
		"raqo_errors_total 0",
		"raqo_plan_cache_misses_total",
		"raqo_query_latency_seconds_bucket{le=\"+Inf\"} 6",
		"raqo_query_latency_seconds_count 6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/engine")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("/debug/engine not valid JSON: %v", err)
	}
	if m.Queries != 6 {
		t.Errorf("/debug/engine queries = %d, want 6", m.Queries)
	}
	if len(m.LatencyBuckets) != numLatencyBuckets {
		t.Errorf("/debug/engine has %d latency buckets, want %d", len(m.LatencyBuckets), numLatencyBuckets)
	}
}

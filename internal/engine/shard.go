package engine

// This file is the engine half of the sharded scatter-gather serving tier.
// When Config.Shards is set, the engine builds per-shard catalogs once at
// construction (zero-copy partitions of the parent heaps, per-shard stats and
// indexes) and routes every qualifying top-k session through the coordinator
// path: the optimizer runs once against the full catalog, the winning plan is
// cloned and rebound per shard, and an exec.ShardMerge gathers the shard
// pipelines under the rank-aware early-stop bounds. Sessions whose plan shape
// or partitioning cannot be sharded safely fall back to the single-engine
// path (counted in the shard_fallbacks metric), so enabling sharding never
// changes which queries are answerable.

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"rankopt/internal/catalog"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/plan"
	"rankopt/internal/trace"
)

// ShardCount reports how many shards the engine serves from (0 = unsharded).
func (e *Engine) ShardCount() int { return len(e.shards) }

// ShardError reports why Config.Shards could not be honored (for example a
// table without a partition spec); nil when sharding is off or active.
func (e *Engine) ShardError() error { return e.shardErr }

// shardable reports whether the session's plan can run on the sharded tier,
// returning the global k. The requirements are exactly the ones the
// correctness argument needs:
//
//   - the root is Limit(k>0) over Rank — the coordinator merges on the score
//     column Rank appends and rewrites its rank column, so both must be the
//     plan's final output (an explicit SELECT list compiles a Project above
//     the Limit and falls back);
//   - every base table carries a partition spec;
//   - every join node equates partition columns of its two sides under
//     compatible specs, so joining tuples always co-locate on one shard and
//     the union of per-shard join results is the global join result.
func (e *Engine) shardable(root *plan.Node) (int, bool) {
	if len(e.shards) == 0 || root == nil {
		return 0, false
	}
	if root.Op != plan.OpLimit || root.K <= 0 || len(root.Children) != 1 {
		return 0, false
	}
	rank := root.Input()
	if rank.Op != plan.OpRank || len(rank.Children) != 1 {
		return 0, false
	}
	body := rank.Input()
	for _, t := range body.Tables() {
		if _, ok := e.cat.PartitionOf(t); !ok {
			return 0, false
		}
	}
	ok := true
	body.Walk(func(n *plan.Node) {
		if !ok {
			return
		}
		switch n.Op {
		case plan.OpNLJ, plan.OpINLJ, plan.OpHashJoin, plan.OpMergeJoin, plan.OpHRJN, plan.OpNRJN:
			if !e.joinCoPartitioned(n) {
				ok = false
			}
		case plan.OpRankAgg:
			if !e.taCoPartitioned(n) {
				ok = false
			}
		}
	})
	if !ok {
		return 0, false
	}
	return root.K, true
}

// joinCoPartitioned reports whether some equi-predicate of the join equates
// the partition columns of its two tables under compatible specs. One such
// predicate suffices: it already restricts matches to co-located tuples, and
// the remaining predicates only filter further.
func (e *Engine) joinCoPartitioned(n *plan.Node) bool {
	for _, p := range n.EqPreds {
		ls, lok := e.cat.PartitionOf(p.L.Table)
		rs, rok := e.cat.PartitionOf(p.R.Table)
		if lok && rok && ls.Column == p.L.Name && rs.Column == p.R.Name && ls.Compatible(rs) {
			return true
		}
	}
	return false
}

// taCoPartitioned reports whether a TA rank-aggregate's inputs are all
// partitioned on their shared object-id column under compatible specs, so an
// object's rows across all inputs land on one shard.
func (e *Engine) taCoPartitioned(n *plan.Node) bool {
	if len(n.TAInputs) == 0 {
		return false
	}
	var first catalog.PartitionSpec
	for i, ti := range n.TAInputs {
		spec, ok := e.cat.PartitionOf(ti.Rel.Name)
		if !ok {
			return false
		}
		idCol := ti.Rel.Schema().Column(ti.IDPos).Name
		if spec.Column != idCol {
			return false
		}
		if i == 0 {
			first = spec
		} else if !first.Compatible(spec) {
			return false
		}
	}
	return true
}

// shardCeiling computes an a-priori upper bound on any score shard catalog sc
// can produce: each column score term contributes weight·max (weight·min for
// negative weights) from the shard's own statistics. Non-column terms or
// missing statistics yield +Inf (never prune on a bound we cannot prove); a
// shard where any scored table is empty yields -Inf (it cannot produce a
// single result and need never start).
func shardCeiling(sc *catalog.Catalog, score expr.ScoreSum) float64 {
	if len(score.Terms) == 0 {
		return math.Inf(1)
	}
	total := 0.0
	for _, term := range score.Terms {
		cr, ok := term.E.(expr.ColRef)
		if !ok {
			return math.Inf(1)
		}
		tab, err := sc.Table(cr.Table)
		if err != nil {
			return math.Inf(1)
		}
		if tab.Stats.Card == 0 {
			return math.Inf(-1)
		}
		st, ok := tab.Stats.Cols[cr.Name]
		if !ok {
			return math.Inf(1)
		}
		if term.Weight >= 0 {
			total += term.Weight * st.Max
		} else {
			total += term.Weight * st.Min
		}
	}
	return total
}

// runSharded executes the session on the sharded tier: one plan clone
// rebound and compiled per shard (all charging the session's shared budget),
// gathered by a ShardMerge whose start width is Config.ShardWidth. Analyze
// sessions compile every shard pipeline under stats collectors and fill the
// response's ShardAnalysis; traced sessions additionally get one Chrome lane
// per shard worker synthesized from the coordinator's per-shard records. It
// fills the response's tuples, columns, and shard statistics.
func (e *Engine) runSharded(ctx context.Context, resp *Response, root *plan.Node, k int, budget *exec.Budget, analyze bool, tr *trace.Trace, prog *exec.Progress) error {
	score := root.Input().Score
	collect := analyze || tr != nil
	type shardJoin struct {
		shard int
		node  *plan.Node
		op    exec.StatsReporter
	}
	// joins feed the depth histograms and (analyzed) the per-shard depth
	// report; anyks only feed histograms — their drained-input depths must
	// stay out of the rank-join feedback path.
	var joins, anyks []shardJoin
	var runs []plan.ShardRun
	inputs := make([]exec.ShardInput, len(e.shards))
	cs := tr.Begin("compile", "pipeline")
	for i, sc := range e.shards {
		clone := root.Clone()
		if err := plan.Rebind(clone, sc); err != nil {
			tr.End(cs)
			return fmt.Errorf("engine: shard %d: %w", i, err)
		}
		var op exec.Operator
		var err error
		shard := i
		if collect {
			var ap *plan.AnalyzedPlan
			op, ap, err = plan.CompileAnalyzedLimited(sc, clone, budget)
			if err == nil {
				runs = append(runs, plan.ShardRun{Shard: shard, Root: clone, Analysis: ap})
				clone.Walk(func(n *plan.Node) {
					a := ap.Collector(n)
					if a == nil {
						return
					}
					if n.Op.IsRankJoin() {
						joins = append(joins, shardJoin{shard, n, a})
					} else if n.Op == plan.OpAnyK {
						anyks = append(anyks, shardJoin{shard, n, a})
					}
				})
			}
		} else {
			op, err = plan.CompileWith(sc, clone, plan.Config{
				Trace: func(n *plan.Node, o exec.Operator) {
					sr, ok := o.(exec.StatsReporter)
					if !ok {
						return
					}
					if n.Op.IsRankJoin() {
						joins = append(joins, shardJoin{shard, n, sr})
					} else if n.Op == plan.OpAnyK {
						anyks = append(anyks, shardJoin{shard, n, sr})
					}
				},
				Budget:    budget,
				ScalarRef: e.perTuple,
			})
		}
		if err != nil {
			tr.End(cs)
			return fmt.Errorf("engine: shard %d compile: %w", i, err)
		}
		inputs[i] = exec.ShardInput{Op: op, Ceiling: shardCeiling(sc, score)}
	}
	tr.End(cs)
	merge, err := exec.NewShardMerge(inputs, k, budget)
	if err != nil {
		return err
	}
	merge.StartWidth = e.shardWidth
	merge.Progress = prog
	es := tr.Begin("execute", "pipeline")
	execStart := time.Now()
	tuples, err := exec.CollectPerTupleCtx(ctx, merge)
	execNanos := time.Since(execStart).Nanoseconds()
	if err != nil {
		tr.End(es)
		return fmt.Errorf("engine: execute: %w", err)
	}
	// The shard workers were joined before the gather returned, so reading
	// the per-shard operators and coordinator stats here races with nothing.
	st := merge.Stats()
	if tr != nil {
		addShardSpans(tr, es, &st, runs, execStart)
	}
	tr.End(es)
	resp.Tuples = tuples
	resp.Sharded = true
	resp.ShardStats = &st
	sch := merge.Schema()
	resp.Columns = make([]string, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		resp.Columns[i] = sch.Column(i).QualifiedName()
	}
	if collect {
		resp.ShardAnalysis = &plan.ShardedAnalysis{Stats: st, Shards: runs}
	}
	for _, sj := range joins {
		jst := sj.op.Stats()
		idx := histOpIndex(sj.node.Op)
		e.met.observeOpDepth(idx, int64(jst.LeftDepth))
		e.met.observeOpDepth(idx, int64(jst.RightDepth))
		if collect {
			resp.RankJoins = append(resp.RankJoins, RankJoinStat{
				Op:    fmt.Sprintf("%s[shard %d]", sj.node.Op.String(), sj.shard),
				Pred:  rankJoinPredLabel(sj.node),
				Stats: jst,
				EstDL: sj.node.EstDL,
				EstDR: sj.node.EstDR,
			})
		}
	}
	for _, sj := range anyks {
		ast := sj.op.Stats()
		e.met.observeOpDepth(histOpAnyK, int64(ast.LeftDepth))
		e.met.observeOpDepth(histOpAnyK, int64(ast.RightDepth))
	}
	for _, r := range runs {
		e.observeAnalyzedOps(r.Root, r.Analysis)
	}
	e.met.observeSharded(&st, execNanos)
	return nil
}

// addShardSpans synthesizes the sharded execute trace: one Chrome lane per
// shard worker carrying the shard's lifetime span (outcome cause, tuples
// pulled, a-priori ceiling vs live bound at decision time), with the shard
// pipeline's per-operator spans laid end-to-end inside it when the session
// collected stats. Pruned shards never ran and render as zero-length markers
// at the execute start.
func addShardSpans(tr *trace.Trace, parent int, st *exec.ShardMergeStats, runs []plan.ShardRun, execStart time.Time) {
	byShard := map[int]plan.ShardRun{}
	for _, r := range runs {
		byShard[r.Shard] = r
	}
	for i := range st.PerShard {
		out := &st.PerShard[i]
		tid := trace.OperatorTID + out.Shard
		start, end := out.StartAt, out.EndAt
		if start.IsZero() {
			start, end = execStart, execStart
		} else if end.Before(start) {
			end = start
		}
		cause := out.Cause
		if cause == "" {
			cause = "aborted"
		}
		sid := tr.AddSpan(parent, fmt.Sprintf("shard %d", out.Shard), "shard", tid, start, end.Sub(start),
			trace.Arg{Key: "cause", Val: cause},
			trace.Arg{Key: "pulled", Val: strconv.Itoa(out.Pulled)},
			trace.Arg{Key: "ceiling_est", Val: fmt.Sprintf("%.3f", out.Ceiling)},
			trace.Arg{Key: "bound_act", Val: fmt.Sprintf("%.3f", out.Bound)},
		)
		r, ok := byShard[out.Shard]
		if !ok || r.Analysis == nil || out.Cause == exec.ShardCausePruned {
			continue
		}
		at := start
		r.Root.Walk(func(n *plan.Node) {
			ost, ok := r.Analysis.Stats(n)
			if !ok {
				return
			}
			dur := time.Duration(ost.OpenNanos + ost.EstNextNanos())
			tr.AddSpan(sid, n.Op.String(), "operator", tid, at, dur,
				trace.Arg{Key: "tuples_out", Val: strconv.FormatInt(ost.TuplesOut, 10)})
			at = at.Add(dur)
		})
	}
}

package engine

// This file is the engine half of the sharded scatter-gather serving tier.
// When Config.Shards is set, the engine builds per-shard catalogs once at
// construction (zero-copy partitions of the parent heaps, per-shard stats and
// indexes) and routes every qualifying top-k session through the coordinator
// path: the optimizer runs once against the full catalog, the winning plan is
// cloned and rebound per shard, and an exec.ShardMerge gathers the shard
// pipelines under the rank-aware early-stop bounds. Sessions whose plan shape
// or partitioning cannot be sharded safely fall back to the single-engine
// path (counted in the shard_fallbacks metric), so enabling sharding never
// changes which queries are answerable.

import (
	"context"
	"fmt"
	"math"

	"rankopt/internal/catalog"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/plan"
)

// ShardCount reports how many shards the engine serves from (0 = unsharded).
func (e *Engine) ShardCount() int { return len(e.shards) }

// ShardError reports why Config.Shards could not be honored (for example a
// table without a partition spec); nil when sharding is off or active.
func (e *Engine) ShardError() error { return e.shardErr }

// shardable reports whether the session's plan can run on the sharded tier,
// returning the global k. The requirements are exactly the ones the
// correctness argument needs:
//
//   - the root is Limit(k>0) over Rank — the coordinator merges on the score
//     column Rank appends and rewrites its rank column, so both must be the
//     plan's final output (an explicit SELECT list compiles a Project above
//     the Limit and falls back);
//   - every base table carries a partition spec;
//   - every join node equates partition columns of its two sides under
//     compatible specs, so joining tuples always co-locate on one shard and
//     the union of per-shard join results is the global join result.
func (e *Engine) shardable(root *plan.Node) (int, bool) {
	if len(e.shards) == 0 || root == nil {
		return 0, false
	}
	if root.Op != plan.OpLimit || root.K <= 0 || len(root.Children) != 1 {
		return 0, false
	}
	rank := root.Input()
	if rank.Op != plan.OpRank || len(rank.Children) != 1 {
		return 0, false
	}
	body := rank.Input()
	for _, t := range body.Tables() {
		if _, ok := e.cat.PartitionOf(t); !ok {
			return 0, false
		}
	}
	ok := true
	body.Walk(func(n *plan.Node) {
		if !ok {
			return
		}
		switch n.Op {
		case plan.OpNLJ, plan.OpINLJ, plan.OpHashJoin, plan.OpMergeJoin, plan.OpHRJN, plan.OpNRJN:
			if !e.joinCoPartitioned(n) {
				ok = false
			}
		case plan.OpRankAgg:
			if !e.taCoPartitioned(n) {
				ok = false
			}
		}
	})
	if !ok {
		return 0, false
	}
	return root.K, true
}

// joinCoPartitioned reports whether some equi-predicate of the join equates
// the partition columns of its two tables under compatible specs. One such
// predicate suffices: it already restricts matches to co-located tuples, and
// the remaining predicates only filter further.
func (e *Engine) joinCoPartitioned(n *plan.Node) bool {
	for _, p := range n.EqPreds {
		ls, lok := e.cat.PartitionOf(p.L.Table)
		rs, rok := e.cat.PartitionOf(p.R.Table)
		if lok && rok && ls.Column == p.L.Name && rs.Column == p.R.Name && ls.Compatible(rs) {
			return true
		}
	}
	return false
}

// taCoPartitioned reports whether a TA rank-aggregate's inputs are all
// partitioned on their shared object-id column under compatible specs, so an
// object's rows across all inputs land on one shard.
func (e *Engine) taCoPartitioned(n *plan.Node) bool {
	if len(n.TAInputs) == 0 {
		return false
	}
	var first catalog.PartitionSpec
	for i, ti := range n.TAInputs {
		spec, ok := e.cat.PartitionOf(ti.Rel.Name)
		if !ok {
			return false
		}
		idCol := ti.Rel.Schema().Column(ti.IDPos).Name
		if spec.Column != idCol {
			return false
		}
		if i == 0 {
			first = spec
		} else if !first.Compatible(spec) {
			return false
		}
	}
	return true
}

// shardCeiling computes an a-priori upper bound on any score shard catalog sc
// can produce: each column score term contributes weight·max (weight·min for
// negative weights) from the shard's own statistics. Non-column terms or
// missing statistics yield +Inf (never prune on a bound we cannot prove); a
// shard where any scored table is empty yields -Inf (it cannot produce a
// single result and need never start).
func shardCeiling(sc *catalog.Catalog, score expr.ScoreSum) float64 {
	if len(score.Terms) == 0 {
		return math.Inf(1)
	}
	total := 0.0
	for _, term := range score.Terms {
		cr, ok := term.E.(expr.ColRef)
		if !ok {
			return math.Inf(1)
		}
		tab, err := sc.Table(cr.Table)
		if err != nil {
			return math.Inf(1)
		}
		if tab.Stats.Card == 0 {
			return math.Inf(-1)
		}
		st, ok := tab.Stats.Cols[cr.Name]
		if !ok {
			return math.Inf(1)
		}
		if term.Weight >= 0 {
			total += term.Weight * st.Max
		} else {
			total += term.Weight * st.Min
		}
	}
	return total
}

// runSharded executes the session on the sharded tier: one plan clone
// rebound and compiled per shard (all charging the session's shared budget),
// gathered by a ShardMerge whose start width is Config.ShardWidth. It fills
// the response's tuples, columns, and shard statistics.
func (e *Engine) runSharded(ctx context.Context, resp *Response, root *plan.Node, k int, budget *exec.Budget) error {
	score := root.Input().Score
	inputs := make([]exec.ShardInput, len(e.shards))
	for i, sc := range e.shards {
		clone := root.Clone()
		if err := plan.Rebind(clone, sc); err != nil {
			return fmt.Errorf("engine: shard %d: %w", i, err)
		}
		op, err := plan.CompileWith(sc, clone, plan.Config{Budget: budget, ScalarRef: e.perTuple})
		if err != nil {
			return fmt.Errorf("engine: shard %d compile: %w", i, err)
		}
		inputs[i] = exec.ShardInput{Op: op, Ceiling: shardCeiling(sc, score)}
	}
	merge, err := exec.NewShardMerge(inputs, k, budget)
	if err != nil {
		return err
	}
	merge.StartWidth = e.shardWidth
	tuples, err := exec.CollectPerTupleCtx(ctx, merge)
	if err != nil {
		return fmt.Errorf("engine: execute: %w", err)
	}
	st := merge.Stats()
	resp.Tuples = tuples
	resp.Sharded = true
	resp.ShardStats = &st
	sch := merge.Schema()
	resp.Columns = make([]string, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		resp.Columns[i] = sch.Column(i).QualifiedName()
	}
	e.met.observeSharded(&st)
	return nil
}

package engine

// This file is the live query registry: every admitted session gets a
// numeric ID and a lock-free per-session state machine
// (queued→planning→executing→merging→done/aborted) carrying rank-aware
// progress — tuples emitted vs. k, the current k-th score vs. the best bound
// any live source could still produce, per-shard liveness. Observers snapshot
// it without blocking execution (/debug/queries, the REPL \queries command),
// and any running session can be aborted by ID (POST
// /debug/queries/{id}/cancel), which cancels the session's derived context
// and surfaces exec.ErrQueryCancelled in its Response.

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rankopt/internal/exec"
)

// QueryState is one session's position in the registry's state machine.
type QueryState uint32

const (
	QueryQueued QueryState = iota
	QueryPlanning
	QueryExecuting
	// QueryMerging: a sharded session whose gather finished and whose
	// coordinator is assembling the final ranked winners.
	QueryMerging
	QueryDone
	QueryAborted
)

// String renders the state the way /debug/queries spells it.
func (s QueryState) String() string {
	switch s {
	case QueryQueued:
		return "queued"
	case QueryPlanning:
		return "planning"
	case QueryExecuting:
		return "executing"
	case QueryMerging:
		return "merging"
	case QueryDone:
		return "done"
	case QueryAborted:
		return "aborted"
	}
	return "unknown"
}

// queryEntry is one registered session. The running session's goroutine
// stores into the atomic fields; observers load them. cancel, clientID, sql,
// and start are written once before the entry becomes visible; errMsg is an
// atomic pointer because finish races with late snapshots.
type queryEntry struct {
	id       uint64
	clientID string
	sql      string
	start    time.Time
	cancel   context.CancelFunc

	state    atomic.Uint32
	k        atomic.Int64
	sharded  atomic.Bool
	endNanos atomic.Int64
	errMsg   atomic.Pointer[string]
	prog     exec.Progress
}

func (en *queryEntry) setState(s QueryState) { en.state.Store(uint32(s)) }

// recentQueries bounds the ring of finished sessions kept for post-hoc
// inspection (a done/aborted query stays visible briefly on /debug/queries).
const recentQueries = 32

// queryRegistry tracks the live sessions plus a small ring of recent ones.
// Registration, state transitions, and snapshots are lock-free on the query
// path; only the finished ring takes a mutex (once per session, at the end).
type queryRegistry struct {
	nextID atomic.Uint64
	live   sync.Map // uint64 → *queryEntry

	mu     sync.Mutex
	recent []*queryEntry
}

// register admits one session: assigns its ID, publishes the entry in the
// live map, and returns it in the queued state.
func (r *queryRegistry) register(clientID, sql string, cancel context.CancelFunc) *queryEntry {
	en := &queryEntry{
		id:       r.nextID.Add(1),
		clientID: clientID,
		sql:      sql,
		start:    time.Now(),
		cancel:   cancel,
	}
	r.live.Store(en.id, en)
	return en
}

// finish retires one session: records its terminal state and error, moves it
// from the live map to the recent ring.
func (r *queryRegistry) finish(en *queryEntry, err error) {
	en.endNanos.Store(time.Since(en.start).Nanoseconds())
	if err != nil {
		msg := err.Error()
		en.errMsg.Store(&msg)
		en.setState(QueryAborted)
	} else {
		en.setState(QueryDone)
	}
	r.live.Delete(en.id)
	r.mu.Lock()
	r.recent = append(r.recent, en)
	if len(r.recent) > recentQueries {
		r.recent = r.recent[len(r.recent)-recentQueries:]
	}
	r.mu.Unlock()
}

// cancelByID aborts a live session. Reports whether the ID named one.
func (r *queryRegistry) cancelByID(id uint64) bool {
	v, ok := r.live.Load(id)
	if !ok {
		return false
	}
	v.(*queryEntry).cancel()
	return true
}

// QueryInfo is one registry row as served on /debug/queries. Score fields
// are pointers so unknown values (NaN internally) serialize as absent JSON
// keys instead of breaking the encoder.
type QueryInfo struct {
	ID       uint64 `json:"id"`
	ClientID string `json:"client_id,omitempty"`
	SQL      string `json:"sql"`
	State    string `json:"state"`
	Sharded  bool   `json:"sharded,omitempty"`
	// K is the session's top-k bound (0 until planned / for unbounded).
	K int64 `json:"k,omitempty"`
	// ElapsedMillis is time since admission for live sessions, the total
	// session wall time for finished ones.
	ElapsedMillis float64 `json:"elapsed_ms"`
	// Emitted counts result tuples produced so far; with K it is the
	// rank-aware progress fraction.
	Emitted int64 `json:"emitted"`
	// KthScore is the current k-th (lowest surviving) buffered score;
	// MergeBound is the best score any still-live source could produce. The
	// query converges exactly when MergeBound ≤ KthScore.
	KthScore   *float64 `json:"kth_score,omitempty"`
	MergeBound *float64 `json:"merge_bound,omitempty"`
	// ShardsLive/ShardsDone/ShardsTotal report the fan-out of a sharded
	// session (all zero on the single path).
	ShardsLive  int32  `json:"shards_live,omitempty"`
	ShardsDone  int32  `json:"shards_done,omitempty"`
	ShardsTotal int32  `json:"shards_total,omitempty"`
	Error       string `json:"error,omitempty"`
}

// jsonScore boxes a float for omitempty-style JSON, dropping NaN/±Inf.
func jsonScore(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// info snapshots one entry. Fields are loaded independently — monitoring
// cadence, not transaction cadence.
func (en *queryEntry) info() QueryInfo {
	ps := en.prog.Snapshot()
	state := QueryState(en.state.Load())
	if state == QueryExecuting && ps.Merging {
		state = QueryMerging
	}
	elapsed := time.Since(en.start)
	if end := en.endNanos.Load(); end > 0 {
		elapsed = time.Duration(end)
	}
	qi := QueryInfo{
		ID:            en.id,
		ClientID:      en.clientID,
		SQL:           en.sql,
		State:         state.String(),
		Sharded:       en.sharded.Load(),
		K:             en.k.Load(),
		ElapsedMillis: float64(elapsed.Nanoseconds()) / 1e6,
		Emitted:       ps.Emitted,
		KthScore:      jsonScore(ps.Kth),
		MergeBound:    jsonScore(ps.Bound),
		ShardsLive:    ps.ShardsLive,
		ShardsDone:    ps.ShardsDone,
		ShardsTotal:   ps.ShardsTotal,
	}
	if msg := en.errMsg.Load(); msg != nil {
		qi.Error = *msg
	}
	return qi
}

// snapshot lists the live sessions (ascending ID) followed by the recent
// ring (oldest first).
func (r *queryRegistry) snapshot() []QueryInfo {
	var livers []*queryEntry
	r.live.Range(func(_, v any) bool {
		livers = append(livers, v.(*queryEntry))
		return true
	})
	for i := 1; i < len(livers); i++ {
		for j := i; j > 0 && livers[j-1].id > livers[j].id; j-- {
			livers[j-1], livers[j] = livers[j], livers[j-1]
		}
	}
	out := make([]QueryInfo, 0, len(livers)+recentQueries)
	for _, en := range livers {
		out = append(out, en.info())
	}
	r.mu.Lock()
	recent := append([]*queryEntry(nil), r.recent...)
	r.mu.Unlock()
	for _, en := range recent {
		out = append(out, en.info())
	}
	return out
}

// Queries snapshots the live query registry: running sessions first
// (ascending ID), then up to recentQueries finished ones. Safe to call from
// any goroutine while traffic runs.
func (e *Engine) Queries() []QueryInfo { return e.reg.snapshot() }

// CancelQuery aborts the live session with the given registry ID; its
// Response surfaces exec.ErrQueryCancelled. Reports whether the ID named a
// live session.
func (e *Engine) CancelQuery(id uint64) bool { return e.reg.cancelByID(id) }

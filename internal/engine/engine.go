// Package engine is the concurrent query-serving layer: independent
// top-k query sessions (parse → optimize → compile → execute) run in
// goroutine workers against one shared catalog. The ranked-enumeration
// serving workload — many small-k queries over the same data — is exactly
// the shape this layer unlocks.
//
// Concurrency model: the catalog (relations, indexes, statistics) is
// treated as immutable once an Engine is constructed over it; sessions only
// read it, so they need no locks. Everything mutable — the optimizer's
// MEMO, compiled operator trees, rank-join stats — is private to one
// session, except the plan cache, which is sharded and internally
// synchronized. Within a session the optimizer may additionally parallelize
// its DP levels (core.Options.Workers); the two levels of parallelism
// compose.
//
// The plan cache sits between parsing and optimization: a session whose
// query text was seen before skips both; a session whose canonical
// fingerprint (see sqlparse.Fingerprint — the top-k bound is parameterized
// out) matches a cached template skips optimization and only re-instantiates
// a session-private operator tree from the shared immutable template.
// Catalog statistics changes (RefreshStats, AddTable, CreateIndex, ...)
// bump the catalog's stats epoch, which lazily invalidates every cached
// plan built under the old statistics.
package engine

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/estimate"
	"rankopt/internal/exec"
	"rankopt/internal/plan"
	"rankopt/internal/relation"
	"rankopt/internal/sqlparse"
	"rankopt/internal/trace"
)

// Engine serves query sessions against a shared, read-only catalog.
// It is safe for concurrent use by multiple goroutines as long as nobody
// mutates the catalog (AddTable, CreateIndex, RefreshStats, heap writes)
// while sessions run.
type Engine struct {
	cat  *catalog.Catalog
	opts core.Options
	// cache is the sharded plan cache; nil when disabled by Config.
	cache *planCache
	// met aggregates every session into engine-wide counters (see metrics.go).
	met metrics
	// adm bounds in-flight sessions; nil when admission control is off.
	adm *admission
	// defLimits are the per-session resource limits applied when a request
	// carries none of its own.
	defLimits exec.ResourceLimits
	// logger receives structured engine logs; slowQuery is the slow-query
	// threshold (0 disables the slow-query log entirely).
	logger    *slog.Logger
	slowQuery time.Duration
	perTuple  bool
	// shards are the per-shard catalogs of the scatter-gather tier (see
	// shard.go); empty when Config.Shards is 0 or construction failed
	// (shardErr records why). shardWidth caps concurrently running shards.
	shards     []*catalog.Catalog
	shardWidth int
	shardErr   error
	// feedback stores the depth-feedback loop's empirical observations;
	// nil when Config.DepthFeedbackRatio is 0. fbRatio is the measured-over-
	// estimated depth ratio beyond which an execution's depths are recorded.
	feedback *feedbackStore
	fbRatio  float64
	// reg is the live query registry (see registry.go): every session gets
	// an ID, a queued→planning→executing→merging→done/aborted state machine,
	// rank-aware progress, and cancel-by-id. Always on; the per-session cost
	// is one small allocation plus a handful of atomic stores.
	reg queryRegistry
}

// Config controls engine construction beyond the per-session optimizer
// options.
type Config struct {
	// Options apply to every session's optimizer run.
	Options core.Options
	// DisablePlanCache turns the plan cache off: every session runs the
	// full parse+optimize pipeline. Useful for cold-path benchmarks and for
	// cached-vs-uncached identity tests.
	DisablePlanCache bool
	// MaxConcurrent bounds the sessions executing simultaneously; further
	// submissions wait in an admission queue. 0 means unbounded (no
	// admission control and no queueing overhead).
	MaxConcurrent int
	// AdmissionTimeout bounds how long a session may wait for an execution
	// slot before failing with ErrAdmissionTimeout. 0 waits indefinitely
	// (until the query's own deadline, if any). Ignored when MaxConcurrent
	// is 0.
	AdmissionTimeout time.Duration
	// DefaultLimits apply to every request that does not set Request.Limits.
	DefaultLimits exec.ResourceLimits
	// SlowQuery, when positive, logs every session at least this slow to
	// Logger: SQL, latency, plan fingerprint, cache hit, row count, rank-join
	// depths, and the abort cause for failed sessions.
	SlowQuery time.Duration
	// Logger receives the structured engine logs. nil falls back to
	// slog.Default() when SlowQuery is set.
	Logger *slog.Logger
	// PerTupleExec runs the scalar reference executor: plan roots drain one
	// tuple per Next instead of batch-at-a-time, and compilation selects
	// pre-vectorization operator internals (plan.Config.ScalarRef). Kept as
	// a baseline for benchmarks and for cross-checking batch results.
	// Production engines leave it false.
	PerTupleExec bool
	// Shards, when positive, builds the sharded scatter-gather tier over the
	// catalog: every table is partitioned into this many shards (each table
	// needs a catalog.PartitionSpec) and qualifying top-k sessions run one
	// pipeline per shard under a rank-aware early-stop coordinator. 1 is the
	// degenerate single-shard tier (useful as a baseline); 0 disables
	// sharding entirely. Construction failures (e.g. a table without a
	// partition spec) disable the tier and are reported by ShardError.
	Shards int
	// ShardWidth caps how many shard pipelines of one session run
	// concurrently; 0 means GOMAXPROCS. Pending shards start in descending
	// order of their a-priori score ceiling and may be pruned without ever
	// starting.
	ShardWidth int
	// DepthFeedbackRatio, when positive, turns on the depth-feedback loop:
	// after each execution the measured rank-join depths are compared to the
	// optimizer's Section-4 estimates, and a join whose actual depth exceeds
	// ratio × estimated has its depths recorded against the query's
	// fingerprint and table split. The recorded observation invalidates the
	// fingerprint's cached plan, so the next session of that shape
	// re-optimizes with the empirical depths injected into the cost model
	// (core.Options.DepthHints) — mispriced plans are repriced with ground
	// truth after one epoch. 2 is a reasonable production value (re-plan on
	// 2× misprediction); 0 disables the loop.
	DepthFeedbackRatio float64
}

// New constructs an engine over a loaded catalog with the plan cache
// enabled. The options apply to every session; they are copied, so later
// mutation of the caller's value has no effect.
func New(cat *catalog.Catalog, opts core.Options) *Engine {
	return NewWithConfig(cat, Config{Options: opts})
}

// NewWithConfig constructs an engine with explicit configuration.
func NewWithConfig(cat *catalog.Catalog, cfg Config) *Engine {
	e := &Engine{cat: cat, opts: cfg.Options, defLimits: cfg.DefaultLimits,
		logger: cfg.Logger, slowQuery: cfg.SlowQuery, perTuple: cfg.PerTupleExec}
	if e.logger == nil && e.slowQuery > 0 {
		e.logger = slog.Default()
	}
	if !cfg.DisablePlanCache {
		e.cache = newPlanCache()
	}
	if cfg.MaxConcurrent > 0 {
		e.adm = newAdmission(cfg.MaxConcurrent, cfg.AdmissionTimeout)
	}
	if cfg.Shards > 0 {
		shards, err := cat.Shard(cfg.Shards)
		if err != nil {
			e.shardErr = fmt.Errorf("engine: sharding disabled: %w", err)
		} else {
			e.shards = shards
			e.shardWidth = cfg.ShardWidth
		}
	}
	if cfg.DepthFeedbackRatio > 0 {
		e.feedback = newFeedbackStore()
		e.fbRatio = cfg.DepthFeedbackRatio
	}
	return e
}

// CacheStats snapshots the plan cache's hit/miss/invalidation counters and
// entry count. All zeros when the cache is disabled.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// Request is one query session's input.
type Request struct {
	// ID labels the session in its Response (useful when fanning out).
	ID string
	// SQL is the top-k query text.
	SQL string
	// ExplainOnly stops the session after planning: the Response carries
	// the plan (and cache/optimizer counters) but no tuples.
	ExplainOnly bool
	// Analyze compiles the plan with per-operator stats collectors (EXPLAIN
	// ANALYZE): the Response additionally carries an AnalyzedPlan mapping
	// every plan node to its measured tuple counts, depths, and sampled wall
	// times, renderable with plan.FormatAnalyze.
	Analyze bool
	// Deadline, when non-zero, bounds the session's total wall time —
	// admission wait included, so a query queued behind slow traffic times
	// out exactly when a running one would. Expiry surfaces as
	// exec.ErrDeadlineExceeded.
	Deadline time.Time
	// Limits are the session's resource limits (deadline, buffered-tuple
	// budget, per-input depth cap). The zero value applies the engine's
	// Config.DefaultLimits; a non-zero value replaces them entirely.
	Limits exec.ResourceLimits
	// Trace, when non-nil, records the session's pipeline spans (parse →
	// fingerprint → plan-cache → optimize → compile → execute, with nested
	// per-operator spans synthesized from the runtime stats) into the given
	// recorder, and attaches an optimizer decision tracer: the session runs a
	// fresh single-worker optimization so Response.OptTrace carries a
	// deterministic pruning explanation even when the plan cache would have
	// hit. A nil Trace costs exactly one nil compare per stage.
	Trace *trace.Trace
}

// RankJoinStat pairs one rank-join operator of the executed plan with its
// measured depths and ranking-buffer high-water mark.
type RankJoinStat struct {
	// Op is the operator name (HRJN or NRJN).
	Op string
	// Pred labels the join: the primary equi-predicate when one exists,
	// otherwise the residual predicate (NRJN accepts arbitrary predicates).
	Pred string
	// Stats are the measured depths and buffer size.
	Stats exec.RankJoinStats
	// EstDL and EstDR are the optimizer's Section-4 depth-model estimates
	// for this join at the session's k, for measured-vs-estimated display.
	EstDL, EstDR float64
}

// Response is one query session's complete outcome. Err is set (and the
// result fields empty) when any stage of the session failed.
type Response struct {
	ID  string
	SQL string
	// Columns are the qualified output column names.
	Columns []string
	// Tuples is the full result set in output order.
	Tuples []relation.Tuple
	// Plan is the session's physical plan (session-private; callers may
	// render it with plan.Explain).
	Plan *plan.Node
	// CacheHit reports whether the plan came from the plan cache (at either
	// the text or the fingerprint level) rather than a fresh optimizer run.
	CacheHit bool
	// Fingerprint is the query's canonical plan-cache fingerprint (the top-k
	// bound parameterized out); empty when parsing failed or a text-level
	// cache hit skipped fingerprinting.
	Fingerprint string
	// PlansGenerated, PlansKept, PlansPruned, and PlansProtected report the
	// optimizer's enumeration and pruning work. On a cache hit they replay
	// the counters of the run that built the cached template.
	PlansGenerated int
	PlansKept      int
	PlansPruned    int
	PlansProtected int
	// RankJoins holds the measured stats of every rank-join in the plan.
	RankJoins []RankJoinStat
	// Analysis maps plan nodes to their runtime operator stats; set for
	// Analyze and traced sessions. Render with
	// plan.FormatAnalyze(resp.Plan, resp.Analysis).
	Analysis *plan.AnalyzedPlan
	// Sharded reports that the session ran on the scatter-gather tier;
	// ShardStats then carries the coordinator's counters (shards started,
	// pruned, early-stopped, tuples pulled and saved) including the
	// per-shard ceiling/bound/cause rows.
	Sharded    bool
	ShardStats *exec.ShardMergeStats
	// ShardAnalysis is the sharded session's EXPLAIN ANALYZE: the merge
	// stats plus every shard's analyzed pipeline. Set for Analyze and traced
	// sessions that ran sharded; render with plan.FormatShardedAnalyze.
	ShardAnalysis *plan.ShardedAnalysis
	// OptTrace is the optimizer decision trace of a traced session (see
	// Request.Trace); render with OptTrace.Format().
	OptTrace *core.DecisionTrace
	// Elapsed is the wall time of the whole session.
	Elapsed time.Duration
	Err     error
}

// rankJoinPredLabel names a rank-join for stats display without assuming an
// equi-predicate exists (an NRJN can join on a residual-only predicate).
func rankJoinPredLabel(n *plan.Node) string {
	if len(n.EqPreds) > 0 {
		return n.EqPreds[0].String()
	}
	if n.Pred != nil {
		return n.Pred.String()
	}
	return "<no predicate>"
}

// planInfo is one session's planning outcome: the session-private
// instantiated tree plus the provenance the Response reports.
type planInfo struct {
	root     *plan.Node
	hit      bool
	fp       string
	counters plan.PlanCounters
	// k is the session's top-k bound (0 = unbounded), kept for the depth-
	// feedback capture: observations are scaled per-join from it.
	k int
}

// countersOf packs an optimizer result's enumeration tallies.
func countersOf(res *core.Result) plan.PlanCounters {
	return plan.PlanCounters{
		Generated: res.PlansGenerated,
		Kept:      res.PlansKept,
		Pruned:    res.PlansPruned,
		Protected: res.PlansProtected,
	}
}

// planFor produces a session-private plan for the SQL text, consulting the
// plan cache when enabled. The returned tree is always a fresh instantiation
// (never a shared cached tree), rebound to the query's k and annotated with
// depth hints.
func (e *Engine) planFor(sql string) (planInfo, error) {
	if e.cache == nil {
		return e.optimizeFresh(sql)
	}
	epoch := e.cat.StatsEpoch()
	// Level 1: exact query text — skips lexing and parsing.
	if fp, qk, ok := e.cache.lookupText(sql, epoch); ok {
		if tmpl, ok := e.cache.lookupPlan(fp, epoch, e.hintEpochFor(fp)); ok {
			e.cache.hits.Add(1)
			return planInfo{root: tmpl.Instantiate(qk), hit: true, fp: fp, counters: tmpl.Counters, k: qk}, nil
		}
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return planInfo{}, fmt.Errorf("engine: parse: %w", err)
	}
	fp := sqlparse.Fingerprint(q)
	e.cache.storeText(sql, fp, q.K, epoch)
	// hints and hintEpoch are read together so the template stored below is
	// labeled with exactly the observations the optimizer saw.
	hints, hintEpoch := e.hintsFor(fp)
	// Level 2: canonical fingerprint — skips optimization.
	if tmpl, ok := e.cache.lookupPlan(fp, epoch, hintEpoch); ok {
		e.cache.hits.Add(1)
		return planInfo{root: tmpl.Instantiate(q.K), hit: true, fp: fp, counters: tmpl.Counters, k: q.K}, nil
	}
	e.cache.misses.Add(1)
	opts := e.opts
	opts.DepthHints = hints
	if len(hints) > 0 {
		e.met.depthReplans.Add(1)
	}
	res, err := core.Optimize(e.cat, q, opts)
	if err != nil {
		return planInfo{}, fmt.Errorf("engine: optimize: %w", err)
	}
	e.met.observeGreedy(res)
	counters := countersOf(res)
	e.met.observeOptimize(counters)
	tmpl := plan.NewTemplate(res.Best, q.K, counters)
	e.cache.storePlan(fp, tmpl, epoch, hintEpoch)
	return planInfo{root: tmpl.Instantiate(q.K), fp: fp, counters: counters, k: q.K}, nil
}

// hintEpochFor returns the fingerprint's depth-feedback hint epoch (0 when
// the loop is off).
func (e *Engine) hintEpochFor(fp string) uint64 {
	if e.feedback == nil {
		return 0
	}
	return e.feedback.epochFor(fp)
}

// hintsFor returns the fingerprint's empirical depth hints and their epoch
// (nil, 0 when the loop is off or nothing was observed).
func (e *Engine) hintsFor(fp string) (map[string]estimate.Observed, uint64) {
	if e.feedback == nil {
		return nil, 0
	}
	return e.feedback.snapshot(fp)
}

// optimizeFresh is the cache-free pipeline: parse and optimize, wrapping the
// result in a throwaway template so instantiation (clone + depth hints)
// behaves identically with the cache on or off.
func (e *Engine) optimizeFresh(sql string) (planInfo, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return planInfo{}, fmt.Errorf("engine: parse: %w", err)
	}
	fp := sqlparse.Fingerprint(q)
	opts := e.opts
	if hints, _ := e.hintsFor(fp); len(hints) > 0 {
		opts.DepthHints = hints
		e.met.depthReplans.Add(1)
	}
	res, err := core.Optimize(e.cat, q, opts)
	if err != nil {
		return planInfo{}, fmt.Errorf("engine: optimize: %w", err)
	}
	e.met.observeGreedy(res)
	counters := countersOf(res)
	e.met.observeOptimize(counters)
	tmpl := plan.NewTemplate(res.Best, q.K, counters)
	return planInfo{root: tmpl.Instantiate(q.K), fp: fp, counters: counters, k: q.K}, nil
}

// planForTraced is planFor under a span recorder: each stage gets a span,
// and the optimizer runs fresh — single worker, decision tracer attached —
// so the returned DecisionTrace is complete and deterministic even when the
// plan cache holds the query. The fresh template still lands in the cache.
func (e *Engine) planForTraced(tr *trace.Trace, sql string) (planInfo, *core.DecisionTrace, error) {
	epoch := e.cat.StatsEpoch()
	if e.cache != nil {
		// Record what the cache would have done; the session re-optimizes
		// regardless so the decision trace exists.
		ls := tr.Begin("plan-cache", "pipeline")
		wouldHit := false
		if fp, _, ok := e.cache.lookupText(sql, epoch); ok {
			_, wouldHit = e.cache.lookupPlan(fp, epoch, e.hintEpochFor(fp))
		}
		if wouldHit {
			tr.Annotate(ls, "would_hit", "true")
		} else {
			tr.Annotate(ls, "would_hit", "false")
		}
		tr.End(ls)
	}
	ps := tr.Begin("parse", "pipeline")
	q, err := sqlparse.Parse(sql)
	tr.End(ps)
	if err != nil {
		return planInfo{}, nil, fmt.Errorf("engine: parse: %w", err)
	}
	fs := tr.Begin("fingerprint", "pipeline")
	fp := sqlparse.Fingerprint(q)
	tr.End(fs)
	dt := core.NewDecisionTrace()
	opts := e.opts
	opts.Tracer = dt
	opts.Workers = 1
	hints, hintEpoch := e.hintsFor(fp)
	opts.DepthHints = hints
	os := tr.Begin("optimize", "pipeline")
	res, err := core.Optimize(e.cat, q, opts)
	if err != nil {
		tr.End(os)
		return planInfo{}, nil, fmt.Errorf("engine: optimize: %w", err)
	}
	e.met.observeGreedy(res)
	tr.AnnotateInt(os, "plans_generated", int64(res.PlansGenerated))
	tr.AnnotateInt(os, "plans_kept", int64(res.PlansKept))
	tr.AnnotateInt(os, "plans_pruned", int64(res.PlansPruned))
	tr.AnnotateInt(os, "plans_protected", int64(res.PlansProtected))
	tr.End(os)
	counters := countersOf(res)
	e.met.observeOptimize(counters)
	tmpl := plan.NewTemplate(res.Best, q.K, counters)
	if e.cache != nil {
		e.cache.storeText(sql, fp, q.K, epoch)
		e.cache.storePlan(fp, tmpl, epoch, hintEpoch)
	}
	is := tr.Begin("instantiate", "pipeline")
	root := tmpl.Instantiate(q.K)
	tr.End(is)
	return planInfo{root: root, fp: fp, counters: counters, k: q.K}, dt, nil
}

// Run executes one complete query session and never panics on malformed
// input: all failures surface in Response.Err. Every session — successful,
// failed, or explain-only — is folded into the engine-wide metrics.
func (e *Engine) Run(req Request) Response {
	return e.RunCtx(context.Background(), req)
}

// RunCtx executes one complete query session under the caller's context:
// cancelling ctx aborts the session mid-execution with the whole operator
// tree closed and exec.ErrQueryCancelled in Response.Err. The request's
// deadline (and the limits' deadline) tightens ctx BEFORE admission, so a
// session queued behind slow traffic expires exactly when a running one
// would.
func (e *Engine) RunCtx(ctx context.Context, req Request) Response {
	limits := req.Limits
	if !limits.Enabled() {
		limits = e.defLimits
	}
	if !req.Deadline.IsZero() && (limits.Deadline.IsZero() || req.Deadline.Before(limits.Deadline)) {
		limits.Deadline = req.Deadline
	}
	if !limits.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, limits.Deadline)
		defer cancel()
	}
	// Every admitted request gets a registry entry and a cancellable derived
	// context, so /debug/queries can watch it live and cancel-by-id can abort
	// it with exec.ErrQueryCancelled.
	ctx, abort := context.WithCancel(ctx)
	defer abort()
	en := e.reg.register(req.ID, req.SQL, abort)
	start := time.Now()
	var resp Response
	if err := e.admit(ctx); err != nil {
		resp = Response{ID: req.ID, SQL: req.SQL, Err: err, Elapsed: time.Since(start)}
	} else {
		resp = e.run(ctx, req, limits, en)
		e.adm.release()
	}
	e.reg.finish(en, resp.Err)
	e.met.observe(&resp, req.Analyze)
	if req.Trace != nil {
		e.met.traced.Add(1)
	}
	e.logSlow(&resp)
	return resp
}

// admit waits for an execution slot (a no-op when admission control is off).
func (e *Engine) admit(ctx context.Context) error {
	if e.adm == nil {
		return exec.CtxErr(ctx)
	}
	e.met.admissionWaiting.Add(1)
	defer e.met.admissionWaiting.Add(-1)
	return e.adm.acquire(ctx)
}

// run is the session pipeline behind RunCtx; en is the session's live
// registry entry (state transitions and progress land there).
func (e *Engine) run(ctx context.Context, req Request, limits exec.ResourceLimits, en *queryEntry) Response {
	start := time.Now()
	resp := Response{ID: req.ID, SQL: req.SQL}
	tr := req.Trace // nil for untraced sessions: every span call no-ops
	session := tr.Begin("session", "pipeline")
	defer tr.End(session)
	en.setState(QueryPlanning)
	fail := func(err error) Response {
		resp.Err = err
		resp.Elapsed = time.Since(start)
		return resp
	}
	if err := exec.CtxErr(ctx); err != nil {
		return fail(err)
	}
	var pi planInfo
	var err error
	if tr != nil {
		pi, resp.OptTrace, err = e.planForTraced(tr, req.SQL)
	} else {
		pi, err = e.planFor(req.SQL)
	}
	if err != nil {
		return fail(err)
	}
	resp.Plan = pi.root
	en.k.Store(int64(pi.k))
	resp.CacheHit = pi.hit
	resp.Fingerprint = pi.fp
	resp.PlansGenerated = pi.counters.Generated
	resp.PlansKept = pi.counters.Kept
	resp.PlansPruned = pi.counters.Pruned
	resp.PlansProtected = pi.counters.Protected
	root := pi.root
	if req.ExplainOnly {
		resp.Elapsed = time.Since(start)
		return resp
	}
	if root.CountOps(plan.OpAnyK) > 0 {
		e.met.anykPlans.Add(1)
	}
	// Sharded tier: qualifying plans run one pipeline per shard under the
	// early-stop coordinator — including Analyze and traced sessions, whose
	// per-shard stats collectors and trace lanes ride the fan-out (the
	// optimizer *decision* trace above stays single-worker for determinism;
	// only execution is parallel). Plans the partitioning cannot cover fall
	// back and are counted by reason.
	if len(e.shards) > 0 {
		if k, ok := e.shardable(root); ok {
			en.setState(QueryExecuting)
			en.sharded.Store(true)
			if err := e.runSharded(ctx, &resp, root, k, exec.NewBudget(limits), req.Analyze, tr, &en.prog); err != nil {
				return fail(err)
			}
			resp.Elapsed = time.Since(start)
			return resp
		}
		e.met.observeShardFallback(shardFallbackNonShardable)
	}
	type tracedJoin struct {
		node *plan.Node
		op   exec.StatsReporter
	}
	// joins are the plan's rank joins (depth report + feedback); anyks are
	// its any-k enumerators (histogram observation only — their drained-input
	// "depths" would poison the rank-join depth feedback).
	var joins, anyks []tracedJoin
	var op exec.Operator
	budget := exec.NewBudget(limits)
	cs := tr.Begin("compile", "pipeline")
	if req.Analyze || tr != nil {
		// Analyze (and traced) sessions thread a stats collector between
		// every operator; the wrappers forward StatsReporter, so the
		// rank-join depth report below works identically in both modes, and
		// traced sessions synthesize per-operator spans from the collectors.
		op, resp.Analysis, err = plan.CompileAnalyzedLimited(e.cat, root, budget)
		if err == nil {
			root.Walk(func(n *plan.Node) {
				a := resp.Analysis.Collector(n)
				if a == nil {
					return
				}
				if n.Op.IsRankJoin() {
					joins = append(joins, tracedJoin{n, a})
				} else if n.Op == plan.OpAnyK {
					anyks = append(anyks, tracedJoin{n, a})
				}
			})
		}
	} else {
		op, err = plan.CompileWith(e.cat, root, plan.Config{
			Trace: func(n *plan.Node, o exec.Operator) {
				sr, ok := o.(exec.StatsReporter)
				if !ok {
					return
				}
				if n.Op.IsRankJoin() {
					joins = append(joins, tracedJoin{n, sr})
				} else if n.Op == plan.OpAnyK {
					anyks = append(anyks, tracedJoin{n, sr})
				}
			},
			Budget: budget,
			// PerTupleExec means the whole scalar reference executor, not just
			// the drain: vectorized internal phases fall back too.
			ScalarRef: e.perTuple,
		})
	}
	tr.End(cs)
	if err != nil {
		return fail(fmt.Errorf("engine: compile: %w", err))
	}
	en.setState(QueryExecuting)
	root_ := exec.WithProgress(op, &en.prog)
	es := tr.Begin("execute", "pipeline")
	execStart := time.Now()
	var tuples []relation.Tuple
	if e.perTuple {
		tuples, err = exec.CollectPerTupleCtx(ctx, root_)
	} else {
		tuples, err = exec.CollectCtx(ctx, root_)
	}
	tr.AnnotateInt(es, "tuples", int64(len(tuples)))
	tr.End(es)
	if tr != nil && resp.Analysis != nil {
		addOperatorSpans(tr, es, root, resp.Analysis, execStart)
	}
	if err != nil {
		return fail(fmt.Errorf("engine: execute: %w", err))
	}
	resp.Tuples = tuples
	sch := op.Schema()
	resp.Columns = make([]string, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		resp.Columns[i] = sch.Column(i).QualifiedName()
	}
	// Stats are read only after Collect closed the operators: the session
	// owns the tree, so no other goroutine can observe partial stats. The
	// estimated depths were annotated on the session's plan clone during
	// instantiation (plan.AnnotateDepthHints).
	for _, tj := range joins {
		st := tj.op.Stats()
		resp.RankJoins = append(resp.RankJoins, RankJoinStat{
			Op:    tj.node.Op.String(),
			Pred:  rankJoinPredLabel(tj.node),
			Stats: st,
			EstDL: tj.node.EstDL,
			EstDR: tj.node.EstDR,
		})
		idx := histOpIndex(tj.node.Op)
		e.met.observeOpDepth(idx, int64(st.LeftDepth))
		e.met.observeOpDepth(idx, int64(st.RightDepth))
	}
	for _, tj := range anyks {
		st := tj.op.Stats()
		e.met.observeOpDepth(histOpAnyK, int64(st.LeftDepth))
		e.met.observeOpDepth(histOpAnyK, int64(st.RightDepth))
	}
	if resp.Analysis != nil {
		e.observeAnalyzedOps(root, resp.Analysis)
	}
	if e.feedback != nil && len(joins) > 0 && resp.Fingerprint != "" {
		demands := rankJoinDemands(root, float64(pi.k))
		for _, tj := range joins {
			e.observeDepths(resp.Fingerprint, tj.node, tj.op.Stats(), demands[tj.node])
		}
	}
	resp.Elapsed = time.Since(start)
	return resp
}

// rankJoinDemands replays Algorithm Propagate over the executed plan to
// recover the output count each rank-join was asked for — the k an
// empirical depth observation is anchored to.
func rankJoinDemands(root *plan.Node, k float64) map[*plan.Node]float64 {
	if k <= 0 {
		k = root.Card
	}
	out := map[*plan.Node]float64{}
	plan.PropagateK(root, k, func(n *plan.Node, nk float64) {
		if n.Op.IsRankJoin() {
			out[n] = nk
		}
	})
	return out
}

// observeDepths is the depth-feedback capture: when a rank-join's measured
// depths exceed the estimates by the configured ratio, the observation is
// recorded under BOTH orientations of its table split (depths swapped) —
// the DP enumerates mirrored splits, so the hint must match whichever side
// the re-optimization puts left. An accepted observation bumps the
// fingerprint's hint epoch, lazily invalidating its cached plan.
func (e *Engine) observeDepths(fp string, n *plan.Node, st exec.RankJoinStats, demand float64) {
	aL, aR := float64(st.LeftDepth), float64(st.RightDepth)
	if n.Op == plan.OpNRJN {
		// An NRJN drains its inner wholesale by construction, so the
		// measured right depth says nothing about the model — comparing it
		// against EstDR flags every NRJN as mis-estimated forever, and
		// recording the full inner cardinality would poison the mirrored
		// HRJN candidates at re-plan time. Only the outer depth is a real
		// estimate; keep the model's inner figure in the observation.
		if aL <= e.fbRatio*math.Max(n.EstDL, 1) {
			return
		}
		aR = math.Max(n.EstDR, 1)
	} else if aL <= e.fbRatio*math.Max(n.EstDL, 1) && aR <= e.fbRatio*math.Max(n.EstDR, 1) {
		return
	}
	k := math.Max(demand, 1)
	e.met.depthObservations.Add(1)
	bumped := e.feedback.observe(fp, plan.DepthHintKey(n), estimate.Observed{K: k, DL: aL, DR: aR})
	if e.feedback.observe(fp, mirrorHintKey(n), estimate.Observed{K: k, DL: aR, DR: aL}) || bumped {
		e.met.depthAccepted.Add(1)
	}
}

// mirrorHintKey is DepthHintKey with the sides swapped.
func mirrorHintKey(n *plan.Node) string {
	return strings.Join(n.Right().Tables(), ",") + "|" + strings.Join(n.Left().Tables(), ",")
}

// addOperatorSpans synthesizes one span per executed operator from the
// analyzed plan's runtime stats, after execution finished (the per-tuple
// path records nothing — the 1-in-32 sampled collectors already ran). Spans
// land under the execute span on one Chrome lane per plan depth, laid
// end-to-end from the execute start: durations are real measurements
// (Open wall time plus the extrapolated Next time), positions are layout.
func addOperatorSpans(tr *trace.Trace, parent int, root *plan.Node, ap *plan.AnalyzedPlan, execStart time.Time) {
	cursors := map[int]time.Time{}
	var walk func(n *plan.Node, depth int)
	walk = func(n *plan.Node, depth int) {
		if st, ok := ap.Stats(n); ok {
			tid := trace.OperatorTID + depth
			at, seen := cursors[tid]
			if !seen {
				at = execStart
			}
			dur := time.Duration(st.OpenNanos + st.EstNextNanos())
			args := []trace.Arg{
				{Key: "tuples_out", Val: strconv.FormatInt(st.TuplesOut, 10)},
				{Key: "next_calls", Val: strconv.FormatInt(st.NextCalls, 10)},
			}
			if n.Op.IsRankJoin() {
				args = append(args,
					trace.Arg{Key: "depth_l", Val: strconv.FormatInt(st.LeftDepth, 10)},
					trace.Arg{Key: "depth_r", Val: strconv.FormatInt(st.RightDepth, 10)},
				)
			}
			tr.AddSpan(parent, n.Op.String(), "operator", tid, at, dur, args...)
			cursors[tid] = at.Add(dur)
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
}

// observeAnalyzedOps folds an analyzed session's per-operator measurements
// into the engine-wide histograms: wall time (Open plus the extrapolated
// Next time) for every tracked operator type, plus the TopK sort's heap
// high-water as its depth sample. Rank-join and any-k depths are observed
// from the stats hook instead, which also covers untimed sessions.
func (e *Engine) observeAnalyzedOps(root *plan.Node, ap *plan.AnalyzedPlan) {
	root.Walk(func(n *plan.Node) {
		idx := histOpIndex(n.Op)
		if idx < 0 {
			return
		}
		st, ok := ap.Stats(n)
		if !ok {
			return
		}
		e.met.observeOpLatency(idx, st.OpenNanos+st.EstNextNanos())
		if idx == histOpTopK {
			e.met.observeOpDepth(histOpTopK, st.MaxHeap)
		}
	})
}

// RunAll fans the requests across the given number of concurrent session
// workers and returns the responses in request order. workers is clamped to
// [1, len(reqs)].
func (e *Engine) RunAll(reqs []Request, workers int) []Response {
	out := make([]Response, len(reqs))
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, r := range reqs {
			out[i] = e.Run(r)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.Run(reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

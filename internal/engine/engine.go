// Package engine is the concurrent query-serving layer: independent
// top-k query sessions (parse → optimize → compile → execute) run in
// goroutine workers against one shared catalog. The ranked-enumeration
// serving workload — many small-k queries over the same data — is exactly
// the shape this layer unlocks.
//
// Concurrency model: the catalog (relations, indexes, statistics) is
// treated as immutable once an Engine is constructed over it; sessions only
// read it, so they need no locks. Everything mutable — the optimizer's
// MEMO, compiled operator trees, rank-join stats — is private to one
// session. Within a session the optimizer may additionally parallelize its
// DP levels (core.Options.Workers); the two levels of parallelism compose.
package engine

import (
	"fmt"
	"sync"
	"time"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/plan"
	"rankopt/internal/relation"
	"rankopt/internal/sqlparse"
)

// Engine serves query sessions against a shared, read-only catalog.
// It is safe for concurrent use by multiple goroutines as long as nobody
// mutates the catalog (AddTable, CreateIndex, RefreshStats, heap writes)
// while sessions run.
type Engine struct {
	cat  *catalog.Catalog
	opts core.Options
}

// New constructs an engine over a loaded catalog. The options apply to
// every session; they are copied, so later mutation of the caller's value
// has no effect.
func New(cat *catalog.Catalog, opts core.Options) *Engine {
	return &Engine{cat: cat, opts: opts}
}

// Request is one query session's input.
type Request struct {
	// ID labels the session in its Response (useful when fanning out).
	ID string
	// SQL is the top-k query text.
	SQL string
}

// RankJoinStat pairs one rank-join operator of the executed plan with its
// measured depths and ranking-buffer high-water mark.
type RankJoinStat struct {
	// Op is the operator name (HRJN or NRJN).
	Op string
	// Pred labels the join: the primary equi-predicate when one exists,
	// otherwise the residual predicate (NRJN accepts arbitrary predicates).
	Pred string
	// Stats are the measured depths and buffer size.
	Stats exec.RankJoinStats
}

// Response is one query session's complete outcome. Err is set (and the
// result fields empty) when any stage of the session failed.
type Response struct {
	ID  string
	SQL string
	// Columns are the qualified output column names.
	Columns []string
	// Tuples is the full result set in output order.
	Tuples []relation.Tuple
	// PlansGenerated and PlansKept report the optimizer's enumeration work.
	PlansGenerated int
	PlansKept      int
	// RankJoins holds the measured stats of every rank-join in the plan.
	RankJoins []RankJoinStat
	// Elapsed is the wall time of the whole session.
	Elapsed time.Duration
	Err     error
}

// rankJoinPredLabel names a rank-join for stats display without assuming an
// equi-predicate exists (an NRJN can join on a residual-only predicate).
func rankJoinPredLabel(n *plan.Node) string {
	if len(n.EqPreds) > 0 {
		return n.EqPreds[0].String()
	}
	if n.Pred != nil {
		return n.Pred.String()
	}
	return "<no predicate>"
}

// Run executes one complete query session and never panics on malformed
// input: all failures surface in Response.Err.
func (e *Engine) Run(req Request) Response {
	start := time.Now()
	resp := Response{ID: req.ID, SQL: req.SQL}
	fail := func(err error) Response {
		resp.Err = err
		resp.Elapsed = time.Since(start)
		return resp
	}
	q, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return fail(fmt.Errorf("engine: parse: %w", err))
	}
	res, err := core.Optimize(e.cat, q, e.opts)
	if err != nil {
		return fail(fmt.Errorf("engine: optimize: %w", err))
	}
	resp.PlansGenerated = res.PlansGenerated
	resp.PlansKept = res.PlansKept
	type tracedJoin struct {
		node *plan.Node
		op   exec.StatsReporter
	}
	var joins []tracedJoin
	op, err := plan.CompileTraced(e.cat, res.Best, func(n *plan.Node, o exec.Operator) {
		if sr, ok := o.(exec.StatsReporter); ok && n.Op.IsRankJoin() {
			joins = append(joins, tracedJoin{n, sr})
		}
	})
	if err != nil {
		return fail(fmt.Errorf("engine: compile: %w", err))
	}
	tuples, err := exec.Collect(op)
	if err != nil {
		return fail(fmt.Errorf("engine: execute: %w", err))
	}
	resp.Tuples = tuples
	sch := op.Schema()
	resp.Columns = make([]string, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		resp.Columns[i] = sch.Column(i).QualifiedName()
	}
	// Stats are read only after Collect closed the operators: the session
	// owns the tree, so no other goroutine can observe partial stats.
	for _, tj := range joins {
		resp.RankJoins = append(resp.RankJoins, RankJoinStat{
			Op:    tj.node.Op.String(),
			Pred:  rankJoinPredLabel(tj.node),
			Stats: tj.op.Stats(),
		})
	}
	resp.Elapsed = time.Since(start)
	return resp
}

// RunAll fans the requests across the given number of concurrent session
// workers and returns the responses in request order. workers is clamped to
// [1, len(reqs)].
func (e *Engine) RunAll(reqs []Request, workers int) []Response {
	out := make([]Response, len(reqs))
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, r := range reqs {
			out[i] = e.Run(r)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.Run(reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Package engine is the concurrent query-serving layer: independent
// top-k query sessions (parse → optimize → compile → execute) run in
// goroutine workers against one shared catalog. The ranked-enumeration
// serving workload — many small-k queries over the same data — is exactly
// the shape this layer unlocks.
//
// Concurrency model: the catalog (relations, indexes, statistics) is
// treated as immutable once an Engine is constructed over it; sessions only
// read it, so they need no locks. Everything mutable — the optimizer's
// MEMO, compiled operator trees, rank-join stats — is private to one
// session, except the plan cache, which is sharded and internally
// synchronized. Within a session the optimizer may additionally parallelize
// its DP levels (core.Options.Workers); the two levels of parallelism
// compose.
//
// The plan cache sits between parsing and optimization: a session whose
// query text was seen before skips both; a session whose canonical
// fingerprint (see sqlparse.Fingerprint — the top-k bound is parameterized
// out) matches a cached template skips optimization and only re-instantiates
// a session-private operator tree from the shared immutable template.
// Catalog statistics changes (RefreshStats, AddTable, CreateIndex, ...)
// bump the catalog's stats epoch, which lazily invalidates every cached
// plan built under the old statistics.
package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/plan"
	"rankopt/internal/relation"
	"rankopt/internal/sqlparse"
)

// Engine serves query sessions against a shared, read-only catalog.
// It is safe for concurrent use by multiple goroutines as long as nobody
// mutates the catalog (AddTable, CreateIndex, RefreshStats, heap writes)
// while sessions run.
type Engine struct {
	cat  *catalog.Catalog
	opts core.Options
	// cache is the sharded plan cache; nil when disabled by Config.
	cache *planCache
	// met aggregates every session into engine-wide counters (see metrics.go).
	met metrics
	// adm bounds in-flight sessions; nil when admission control is off.
	adm *admission
	// defLimits are the per-session resource limits applied when a request
	// carries none of its own.
	defLimits exec.ResourceLimits
}

// Config controls engine construction beyond the per-session optimizer
// options.
type Config struct {
	// Options apply to every session's optimizer run.
	Options core.Options
	// DisablePlanCache turns the plan cache off: every session runs the
	// full parse+optimize pipeline. Useful for cold-path benchmarks and for
	// cached-vs-uncached identity tests.
	DisablePlanCache bool
	// MaxConcurrent bounds the sessions executing simultaneously; further
	// submissions wait in an admission queue. 0 means unbounded (no
	// admission control and no queueing overhead).
	MaxConcurrent int
	// AdmissionTimeout bounds how long a session may wait for an execution
	// slot before failing with ErrAdmissionTimeout. 0 waits indefinitely
	// (until the query's own deadline, if any). Ignored when MaxConcurrent
	// is 0.
	AdmissionTimeout time.Duration
	// DefaultLimits apply to every request that does not set Request.Limits.
	DefaultLimits exec.ResourceLimits
}

// New constructs an engine over a loaded catalog with the plan cache
// enabled. The options apply to every session; they are copied, so later
// mutation of the caller's value has no effect.
func New(cat *catalog.Catalog, opts core.Options) *Engine {
	return NewWithConfig(cat, Config{Options: opts})
}

// NewWithConfig constructs an engine with explicit configuration.
func NewWithConfig(cat *catalog.Catalog, cfg Config) *Engine {
	e := &Engine{cat: cat, opts: cfg.Options, defLimits: cfg.DefaultLimits}
	if !cfg.DisablePlanCache {
		e.cache = newPlanCache()
	}
	if cfg.MaxConcurrent > 0 {
		e.adm = newAdmission(cfg.MaxConcurrent, cfg.AdmissionTimeout)
	}
	return e
}

// CacheStats snapshots the plan cache's hit/miss/invalidation counters and
// entry count. All zeros when the cache is disabled.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// Request is one query session's input.
type Request struct {
	// ID labels the session in its Response (useful when fanning out).
	ID string
	// SQL is the top-k query text.
	SQL string
	// ExplainOnly stops the session after planning: the Response carries
	// the plan (and cache/optimizer counters) but no tuples.
	ExplainOnly bool
	// Analyze compiles the plan with per-operator stats collectors (EXPLAIN
	// ANALYZE): the Response additionally carries an AnalyzedPlan mapping
	// every plan node to its measured tuple counts, depths, and sampled wall
	// times, renderable with plan.FormatAnalyze.
	Analyze bool
	// Deadline, when non-zero, bounds the session's total wall time —
	// admission wait included, so a query queued behind slow traffic times
	// out exactly when a running one would. Expiry surfaces as
	// exec.ErrDeadlineExceeded.
	Deadline time.Time
	// Limits are the session's resource limits (deadline, buffered-tuple
	// budget, per-input depth cap). The zero value applies the engine's
	// Config.DefaultLimits; a non-zero value replaces them entirely.
	Limits exec.ResourceLimits
}

// RankJoinStat pairs one rank-join operator of the executed plan with its
// measured depths and ranking-buffer high-water mark.
type RankJoinStat struct {
	// Op is the operator name (HRJN or NRJN).
	Op string
	// Pred labels the join: the primary equi-predicate when one exists,
	// otherwise the residual predicate (NRJN accepts arbitrary predicates).
	Pred string
	// Stats are the measured depths and buffer size.
	Stats exec.RankJoinStats
	// EstDL and EstDR are the optimizer's Section-4 depth-model estimates
	// for this join at the session's k, for measured-vs-estimated display.
	EstDL, EstDR float64
}

// Response is one query session's complete outcome. Err is set (and the
// result fields empty) when any stage of the session failed.
type Response struct {
	ID  string
	SQL string
	// Columns are the qualified output column names.
	Columns []string
	// Tuples is the full result set in output order.
	Tuples []relation.Tuple
	// Plan is the session's physical plan (session-private; callers may
	// render it with plan.Explain).
	Plan *plan.Node
	// CacheHit reports whether the plan came from the plan cache (at either
	// the text or the fingerprint level) rather than a fresh optimizer run.
	CacheHit bool
	// PlansGenerated and PlansKept report the optimizer's enumeration work.
	// On a cache hit they replay the counters of the run that built the
	// cached template.
	PlansGenerated int
	PlansKept      int
	// RankJoins holds the measured stats of every rank-join in the plan.
	RankJoins []RankJoinStat
	// Analysis maps plan nodes to their runtime operator stats; set only for
	// Analyze sessions. Render with plan.FormatAnalyze(resp.Plan, resp.Analysis).
	Analysis *plan.AnalyzedPlan
	// Elapsed is the wall time of the whole session.
	Elapsed time.Duration
	Err     error
}

// rankJoinPredLabel names a rank-join for stats display without assuming an
// equi-predicate exists (an NRJN can join on a residual-only predicate).
func rankJoinPredLabel(n *plan.Node) string {
	if len(n.EqPreds) > 0 {
		return n.EqPreds[0].String()
	}
	if n.Pred != nil {
		return n.Pred.String()
	}
	return "<no predicate>"
}

// planFor produces a session-private plan for the SQL text, consulting the
// plan cache when enabled. The returned tree is always a fresh instantiation
// (never a shared cached tree), rebound to the query's k and annotated with
// depth hints.
func (e *Engine) planFor(sql string) (root *plan.Node, hit bool, gen, kept int, err error) {
	if e.cache == nil {
		tmpl, g, k, qk, err := e.optimize(sql)
		if err != nil {
			return nil, false, 0, 0, err
		}
		return tmpl.Instantiate(qk), false, g, k, nil
	}
	epoch := e.cat.StatsEpoch()
	// Level 1: exact query text — skips lexing and parsing.
	if fp, qk, ok := e.cache.lookupText(sql, epoch); ok {
		if tmpl, ok := e.cache.lookupPlan(fp, epoch); ok {
			e.cache.hits.Add(1)
			return tmpl.Instantiate(qk), true, tmpl.PlansGenerated, tmpl.PlansKept, nil
		}
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, false, 0, 0, fmt.Errorf("engine: parse: %w", err)
	}
	fp := sqlparse.Fingerprint(q)
	e.cache.storeText(sql, fp, q.K, epoch)
	// Level 2: canonical fingerprint — skips optimization.
	if tmpl, ok := e.cache.lookupPlan(fp, epoch); ok {
		e.cache.hits.Add(1)
		return tmpl.Instantiate(q.K), true, tmpl.PlansGenerated, tmpl.PlansKept, nil
	}
	e.cache.misses.Add(1)
	res, err := core.Optimize(e.cat, q, e.opts)
	if err != nil {
		return nil, false, 0, 0, fmt.Errorf("engine: optimize: %w", err)
	}
	tmpl := plan.NewTemplate(res.Best, q.K, res.PlansGenerated, res.PlansKept)
	e.cache.storePlan(fp, tmpl, epoch)
	return tmpl.Instantiate(q.K), false, res.PlansGenerated, res.PlansKept, nil
}

// optimize is the cache-free pipeline: parse and optimize, wrapping the
// result in a throwaway template so instantiation (clone + depth hints)
// behaves identically with the cache on or off.
func (e *Engine) optimize(sql string) (tmpl *plan.Template, gen, kept, qk int, err error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("engine: parse: %w", err)
	}
	res, err := core.Optimize(e.cat, q, e.opts)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("engine: optimize: %w", err)
	}
	return plan.NewTemplate(res.Best, q.K, res.PlansGenerated, res.PlansKept),
		res.PlansGenerated, res.PlansKept, q.K, nil
}

// Run executes one complete query session and never panics on malformed
// input: all failures surface in Response.Err. Every session — successful,
// failed, or explain-only — is folded into the engine-wide metrics.
func (e *Engine) Run(req Request) Response {
	return e.RunCtx(context.Background(), req)
}

// RunCtx executes one complete query session under the caller's context:
// cancelling ctx aborts the session mid-execution with the whole operator
// tree closed and exec.ErrQueryCancelled in Response.Err. The request's
// deadline (and the limits' deadline) tightens ctx BEFORE admission, so a
// session queued behind slow traffic expires exactly when a running one
// would.
func (e *Engine) RunCtx(ctx context.Context, req Request) Response {
	limits := req.Limits
	if !limits.Enabled() {
		limits = e.defLimits
	}
	if !req.Deadline.IsZero() && (limits.Deadline.IsZero() || req.Deadline.Before(limits.Deadline)) {
		limits.Deadline = req.Deadline
	}
	if !limits.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, limits.Deadline)
		defer cancel()
	}
	start := time.Now()
	var resp Response
	if err := e.admit(ctx); err != nil {
		resp = Response{ID: req.ID, SQL: req.SQL, Err: err, Elapsed: time.Since(start)}
	} else {
		resp = e.run(ctx, req, limits)
		e.adm.release()
	}
	e.met.observe(&resp, req.Analyze)
	return resp
}

// admit waits for an execution slot (a no-op when admission control is off).
func (e *Engine) admit(ctx context.Context) error {
	if e.adm == nil {
		return exec.CtxErr(ctx)
	}
	e.met.admissionWaiting.Add(1)
	defer e.met.admissionWaiting.Add(-1)
	return e.adm.acquire(ctx)
}

// run is the session pipeline behind RunCtx.
func (e *Engine) run(ctx context.Context, req Request, limits exec.ResourceLimits) Response {
	start := time.Now()
	resp := Response{ID: req.ID, SQL: req.SQL}
	fail := func(err error) Response {
		resp.Err = err
		resp.Elapsed = time.Since(start)
		return resp
	}
	if err := exec.CtxErr(ctx); err != nil {
		return fail(err)
	}
	root, hit, gen, kept, err := e.planFor(req.SQL)
	if err != nil {
		return fail(err)
	}
	resp.Plan = root
	resp.CacheHit = hit
	resp.PlansGenerated = gen
	resp.PlansKept = kept
	if req.ExplainOnly {
		resp.Elapsed = time.Since(start)
		return resp
	}
	type tracedJoin struct {
		node *plan.Node
		op   exec.StatsReporter
	}
	var joins []tracedJoin
	var op exec.Operator
	budget := exec.NewBudget(limits)
	if req.Analyze {
		// Analyze sessions thread a stats collector between every operator;
		// the wrappers forward StatsReporter, so the rank-join depth report
		// below works identically in both modes.
		op, resp.Analysis, err = plan.CompileAnalyzedLimited(e.cat, root, budget)
		if err == nil {
			root.Walk(func(n *plan.Node) {
				if a := resp.Analysis.Collector(n); a != nil && n.Op.IsRankJoin() {
					joins = append(joins, tracedJoin{n, a})
				}
			})
		}
	} else {
		op, err = plan.CompileTracedLimited(e.cat, root, func(n *plan.Node, o exec.Operator) {
			if sr, ok := o.(exec.StatsReporter); ok && n.Op.IsRankJoin() {
				joins = append(joins, tracedJoin{n, sr})
			}
		}, budget)
	}
	if err != nil {
		return fail(fmt.Errorf("engine: compile: %w", err))
	}
	tuples, err := exec.CollectCtx(ctx, op)
	if err != nil {
		return fail(fmt.Errorf("engine: execute: %w", err))
	}
	resp.Tuples = tuples
	sch := op.Schema()
	resp.Columns = make([]string, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		resp.Columns[i] = sch.Column(i).QualifiedName()
	}
	// Stats are read only after Collect closed the operators: the session
	// owns the tree, so no other goroutine can observe partial stats. The
	// estimated depths were annotated on the session's plan clone during
	// instantiation (plan.AnnotateDepthHints).
	for _, tj := range joins {
		resp.RankJoins = append(resp.RankJoins, RankJoinStat{
			Op:    tj.node.Op.String(),
			Pred:  rankJoinPredLabel(tj.node),
			Stats: tj.op.Stats(),
			EstDL: tj.node.EstDL,
			EstDR: tj.node.EstDR,
		})
	}
	resp.Elapsed = time.Since(start)
	return resp
}

// RunAll fans the requests across the given number of concurrent session
// workers and returns the responses in request order. workers is clamped to
// [1, len(reqs)].
func (e *Engine) RunAll(reqs []Request, workers int) []Response {
	out := make([]Response, len(reqs))
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, r := range reqs {
			out[i] = e.Run(r)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.Run(reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

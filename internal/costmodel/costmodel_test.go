package costmodel

import (
	"testing"
	"testing/quick"
)

func TestPages(t *testing.T) {
	p := Default()
	if p.Pages(0) != 0 || p.Pages(-5) != 0 {
		t.Error("non-positive cards have 0 pages")
	}
	if p.Pages(1) != 1 || p.Pages(100) != 1 || p.Pages(101) != 2 {
		t.Error("page rounding")
	}
}

func TestSeqScan(t *testing.T) {
	p := Default()
	full := p.SeqScan(10000, 10000)
	half := p.SeqScan(10000, 5000)
	if half >= full {
		t.Error("partial scan must be cheaper")
	}
	// Overshoot clamps.
	if p.SeqScan(100, 1e9) != p.SeqScan(100, 100) {
		t.Error("produced clamps to total")
	}
	if p.SeqScan(0, 10) != 0 {
		t.Error("empty relation scans free")
	}
}

func TestIndexScanClusteredCheaper(t *testing.T) {
	p := Default()
	if p.IndexScan(1000, true) >= p.IndexScan(1000, false) {
		t.Error("clustered index scan must be cheaper")
	}
	if p.IndexScan(0, false) != 0 {
		t.Error("zero tuples free")
	}
}

func TestSortRegimes(t *testing.T) {
	p := Default()
	if p.Sort(1) != 0 || p.Sort(0) != 0 {
		t.Error("trivial sorts free")
	}
	inMem := p.Sort(1000) // 10 pages < 256 buffer pages
	if inMem <= 0 {
		t.Error("in-memory sort should charge CPU")
	}
	big := p.Sort(1e6) // 10000 pages > buffer: external
	if big <= p.Pages(1e6)*2*p.SeqPage {
		t.Error("external sort must charge at least one read+write pass")
	}
	// Monotone in cardinality.
	if p.Sort(2e6) <= big {
		t.Error("sort cost monotone")
	}
}

func TestJoinCostHelpers(t *testing.T) {
	p := Default()
	if p.IndexProbe(0) != p.RandPage {
		t.Error("empty probe costs the traversal")
	}
	if p.HashBuild(1000) >= p.HashBuild(1e7) {
		t.Error("hash build monotone")
	}
	small := p.HashBuild(100)
	if small != 100*p.CPUCompare {
		t.Error("in-memory build is CPU only")
	}
	if p.HashProbe(100, 10) <= 0 || p.MergeCPU(10, 10, 5) <= 0 {
		t.Error("probe/merge positive")
	}
	if p.NestedLoopCPU(10, 20, 5) != 200*p.CPUCompare+5*p.CPUTuple {
		t.Error("NL CPU formula")
	}
	if p.HeapPush(0, 100) != 0 {
		t.Error("no ops, no heap cost")
	}
	if p.HeapPush(10, 1) <= 0 {
		t.Error("heap size clamps to 2")
	}
}

// Property: every cost is non-negative and monotone in the work amount.
func TestCostsNonNegativeMonotone(t *testing.T) {
	p := Default()
	f := func(a, b uint16) bool {
		x, y := float64(a), float64(a)+float64(b)
		if p.SeqScan(1e6, x) < 0 || p.SeqScan(1e6, y) < p.SeqScan(1e6, x) {
			return false
		}
		if p.IndexScan(y, false) < p.IndexScan(x, false) {
			return false
		}
		if p.Sort(y) < p.Sort(x) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package costmodel holds the page-based I/O + CPU cost formulas the
// optimizer charges physical operators with. The numbers follow the classic
// System R style: sequential and random page costs, per-tuple CPU cost, and
// an external merge-sort formula. Absolute values are arbitrary units; the
// paper's Figures 1 and 6 likewise report estimated cost units, so only the
// relative shape matters.
package costmodel

import "math"

// Params are the tunables of the cost model.
type Params struct {
	// PageSize is the number of tuples per disk page.
	PageSize int
	// BufferPages is the memory available to sorts and hash tables, in pages.
	BufferPages int
	// SeqPage is the cost of a sequential page read/write.
	SeqPage float64
	// RandPage is the cost of a random page access (index probes,
	// unclustered index scans).
	RandPage float64
	// CPUTuple is the CPU cost of processing one tuple.
	CPUTuple float64
	// CPUCompare is the CPU cost of one comparison or hash operation.
	CPUCompare float64
}

// Default returns the parameter set used throughout the experiments.
func Default() Params {
	return Params{
		PageSize:    100,
		BufferPages: 256,
		SeqPage:     1.0,
		RandPage:    4.0,
		CPUTuple:    0.01,
		CPUCompare:  0.001,
	}
}

// Pages converts a tuple count to a page count.
func (p Params) Pages(card float64) float64 {
	if card <= 0 {
		return 0
	}
	return math.Ceil(card / float64(p.PageSize))
}

// SeqScan is the cost of reading `produced` tuples of a heap file holding
// `total` tuples: sequential page I/O prorated by the consumed prefix, plus
// per-tuple CPU. Reading everything charges all pages.
func (p Params) SeqScan(total, produced float64) float64 {
	if total <= 0 {
		return 0
	}
	if produced > total {
		produced = total
	}
	return p.Pages(produced)*p.SeqPage + produced*p.CPUTuple
}

// IndexScan is the cost of retrieving `produced` tuples through a B+tree in
// key order. A clustered index reads sequential pages; an unclustered index
// pays one random page access per tuple (the classic worst-case charge).
func (p Params) IndexScan(produced float64, clustered bool) float64 {
	if produced <= 0 {
		return 0
	}
	if clustered {
		return p.Pages(produced)*p.SeqPage + produced*p.CPUTuple
	}
	return produced*p.RandPage + produced*p.CPUTuple
}

// Sort is the cost of sorting card tuples: an in-memory sort charges CPU
// comparisons only; larger inputs pay the external merge-sort I/O
// 2·pages·passes where passes = 1 + ceil(log_{B-1}(runs)).
func (p Params) Sort(card float64) float64 {
	if card <= 1 {
		return 0
	}
	cpu := card * math.Log2(card) * p.CPUCompare
	pages := p.Pages(card)
	if pages <= float64(p.BufferPages) {
		return cpu
	}
	runs := math.Ceil(pages / float64(p.BufferPages))
	passes := 1 + math.Ceil(math.Log(runs)/math.Log(float64(p.BufferPages-1)))
	return 2*pages*passes*p.SeqPage + cpu
}

// IndexProbe is the cost of one B+tree lookup returning `matches` tuples:
// a random page access for the traversal plus one per matching tuple fetch.
func (p Params) IndexProbe(matches float64) float64 {
	return p.RandPage + matches*(p.RandPage+p.CPUTuple)
}

// HashBuild is the cost of building a hash table over card tuples. Tables
// larger than the memory budget pay a spill penalty of one extra write+read
// per overflow page (Grace-style partitioning).
func (p Params) HashBuild(card float64) float64 {
	cpu := card * p.CPUCompare
	pages := p.Pages(card)
	if pages <= float64(p.BufferPages) {
		return cpu
	}
	return cpu + 2*(pages-float64(p.BufferPages))*p.SeqPage
}

// HashProbe is the CPU cost of probing with card tuples producing matches.
func (p Params) HashProbe(card, matches float64) float64 {
	return card*p.CPUCompare + matches*p.CPUTuple
}

// MergeCPU is the CPU cost of merging two sorted streams.
func (p Params) MergeCPU(cardL, cardR, matches float64) float64 {
	return (cardL+cardR)*p.CPUCompare + matches*p.CPUTuple
}

// NestedLoopCPU is the CPU cost of comparing outer tuples against a
// materialized inner of the given size.
func (p Params) NestedLoopCPU(outer, inner, matches float64) float64 {
	return outer*inner*p.CPUCompare + matches*p.CPUTuple
}

// HeapPush is the CPU cost of maintaining a priority queue of the given
// size across `ops` operations.
func (p Params) HeapPush(ops, size float64) float64 {
	if size < 2 {
		size = 2
	}
	return ops * math.Log2(size) * p.CPUCompare
}

// AnyKBuild is the per-input cost of the any-k bottom-up phase over n tuples
// spread across buckets of ~g tuples: hash partitioning (one hash op per
// tuple), the per-bucket suffix sort, and the tuple handling itself. The sort
// is charged at the bucket granularity — n·log2(g) total — which is what
// makes the build cheaper than sorting the whole input when buckets are
// small.
func (p Params) AnyKBuild(n, g float64) float64 {
	if n <= 0 {
		return 0
	}
	g = math.Max(g, 2)
	return n*p.CPUCompare + n*math.Log2(g)*p.CPUCompare + n*p.CPUTuple
}

// AnyKDelay is the enumeration cost of producing k results from an m-way
// any-k path: each pop re-walks the m-level path and pushes up to m
// successors onto a queue that holds O(k·m) pending solutions — the
// operator's delay bound, independent of the join's output cardinality.
func (p Params) AnyKDelay(k, m float64) float64 {
	if k <= 0 || m <= 0 {
		return 0
	}
	ops := k * m
	return p.HeapPush(ops, math.Max(ops, 2)) + ops*p.CPUTuple
}

module rankopt

go 1.22

#!/usr/bin/env bash
# Debug-endpoint smoke: boot the sharded REPL with the debug mux, run one
# top-k session through it, then curl /debug/queries and /metrics and lint
# what comes back. Exercises exactly what an operator would: the live query
# registry rows (the finished session must appear in the recent ring, sharded,
# with its emitted/k progress) and the Prometheus text exposition (every
# series under a declared TYPE, no duplicates, cumulative histogram buckets).
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${SMOKE_PORT:-9469}"
OUT="$(mktemp -d)"
trap 'kill "$REPL_PID" 2>/dev/null || true; rm -rf "$OUT"' EXIT

go build -o "$OUT/raqo" ./cmd/raqo

# Hold stdin open after the query so the REPL (and the mux) stays up while we
# curl; the here-process exits on its own once the sleep runs out.
(
  printf 'SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5;\n'
  sleep 30
) | "$OUT/raqo" -shards 2 -rows 2000 -tables 2 -metrics "$ADDR" >"$OUT/repl.log" 2>&1 &
REPL_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/metrics" -o "$OUT/metrics.txt" 2>/dev/null; then
    break
  fi
  if ! kill -0 "$REPL_PID" 2>/dev/null; then
    echo "debug smoke: raqo exited before serving; log:" >&2
    cat "$OUT/repl.log" >&2
    exit 1
  fi
  sleep 0.2
done

# Give the query time to finish and land in the registry's recent ring, then
# re-fetch metrics so the operator histograms include the session.
sleep 1
curl -fsS "http://$ADDR/debug/queries" -o "$OUT/queries.json"
curl -fsS "http://$ADDR/metrics" -o "$OUT/metrics.txt"

python3 - "$OUT/queries.json" "$OUT/metrics.txt" <<'PY'
import json, re, sys

qpath, mpath = sys.argv[1], sys.argv[2]

# --- /debug/queries: the session must be visible, sharded, and done. ---
rows = json.load(open(qpath)).get("queries")
if not isinstance(rows, list) or not rows:
    sys.exit("debug smoke: /debug/queries returned no rows")
done = [r for r in rows if r.get("state") == "done"]
if not done:
    sys.exit(f"debug smoke: no done session on /debug/queries: {rows}")
q = done[0]
if not q.get("sharded"):
    sys.exit(f"debug smoke: session did not run sharded: {q}")
if q.get("emitted") != 5 or q.get("k") != 5:
    sys.exit(f"debug smoke: bad rank-aware progress (want emitted=5 k=5): {q}")
print(f"queries ok: #{q['id']} [{q['state']}] sharded emitted={q['emitted']}/{q['k']}")

# --- /metrics: lint the Prometheus text exposition. ---
text = open(mpath).read()
typed, seen = {}, set()
samples = {}
for ln in text.splitlines():
    if not ln or ln.startswith("# HELP"):
        continue
    if ln.startswith("# TYPE"):
        _, _, fam, kind = ln.split()
        if fam in typed:
            sys.exit(f"prom lint: duplicate TYPE for {fam}")
        typed[fam] = kind
        continue
    if ln.startswith("#"):
        continue
    m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$', ln)
    if not m:
        sys.exit(f"prom lint: malformed sample line: {ln!r}")
    name, labels, val = m.group(1), m.group(2) or "", m.group(3)
    fam = re.sub(r'_(bucket|sum|count)$', '', name) if re.sub(
        r'_(bucket|sum|count)$', '', name) in typed else name
    if fam not in typed:
        sys.exit(f"prom lint: sample {name} has no TYPE declaration")
    if (name, labels) in seen:
        sys.exit(f"prom lint: duplicate series {name}{labels}")
    seen.add((name, labels))
    float(val)  # must parse
    if name.endswith("_bucket"):
        le = re.search(r'le="([^"]*)"', labels)
        if not le:
            sys.exit(f"prom lint: bucket without le label: {ln!r}")
        key = (fam, re.sub(r'(,\s*)?le="[^"]*"', '', labels))
        bound = float("inf") if le.group(1) == "+Inf" else float(le.group(1))
        prev_bound, prev_count = samples.get(key, (float("-inf"), 0.0))
        if bound <= prev_bound:
            sys.exit(f"prom lint: bucket bounds not increasing in {fam}{labels}")
        if float(val) < prev_count:
            sys.exit(f"prom lint: non-cumulative buckets in {fam}{labels}")
        samples[key] = (bound, float(val))

for want in ("raqo_shard_fallbacks_total", "raqo_greedy_fallbacks_total",
             "raqo_operator_depth", "raqo_operator_latency_seconds"):
    if want not in typed:
        sys.exit(f"prom lint: missing family {want}")
shard_merge = [s for s in seen if s[0] == "raqo_operator_depth_count"
               and 'op="ShardMerge"' in s[1]]
if not shard_merge:
    sys.exit("prom lint: no ShardMerge depth histogram series")
print(f"metrics ok: {len(typed)} families, {len(seen)} series lint clean")
PY

echo "debug smoke passed"

// Command raqo-bench regenerates the paper's evaluation artifacts: every
// figure and table of "Rank-aware Query Optimization" (SIGMOD 2004) plus the
// ablation studies, printed as aligned text tables.
//
// Usage:
//
//	raqo-bench            # list experiments
//	raqo-bench all        # run everything
//	raqo-bench fig6 fig13 # run selected experiments
package main

import (
	"fmt"
	"os"

	"rankopt/internal/bench"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Println("usage: raqo-bench all | <experiment>...")
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.Name, e.What)
		}
		return
	}
	var exps []bench.Experiment
	if len(args) == 1 && args[0] == "all" {
		exps = bench.All()
	} else {
		for _, name := range args {
			e, err := bench.ByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Println(tab)
	}
}

// Command raqo-bench regenerates the paper's evaluation artifacts: every
// figure and table of "Rank-aware Query Optimization" (SIGMOD 2004) plus the
// ablation studies, printed as aligned text tables.
//
// Usage:
//
//	raqo-bench                 # list experiments
//	raqo-bench all             # run everything
//	raqo-bench fig6 fig13      # run selected experiments
//	raqo-bench -concurrency    # concurrent-session throughput sweep,
//	                           # written to BENCH_throughput.json
//	raqo-bench -plancache      # plan-cache cold/warm sweep, written to
//	                           # BENCH_plancache.json
//	raqo-bench -analyze        # depth-model accuracy sweep (estimated vs
//	                           # executed rank-join depths), written to
//	                           # BENCH_analyze.json; exits nonzero when the
//	                           # mean relative error exceeds -maxerr
//	raqo-bench -cancel         # cancellation-under-load latency benchmark
//	                           # (p50/p99 cancel-to-return), written to
//	                           # BENCH_cancel.json; exits nonzero when any
//	                           # session returns a mistyped error
//	raqo-bench -trace          # tracing on/off throughput comparison on the
//	                           # single path and the sharded tier, written to
//	                           # BENCH_trace.json; exits nonzero when traced
//	                           # sessions record nothing, slow down past
//	                           # -maxslowdown, or traced sharded sessions slow
//	                           # down past -maxshardslowdown
//	raqo-bench -batch          # batch vs per-tuple executor comparison with
//	                           # tuple-level parity checking, written to
//	                           # BENCH_batch.json; exits nonzero when the two
//	                           # executor paths disagree
//	raqo-bench -shard          # sharded scatter-gather scaling sweep over
//	                           # shard counts 1/2/4/8 on the skewed
//	                           # range-partitioned workload, written to
//	                           # BENCH_shard.json; exits nonzero when shard=4
//	                           # throughput is below -minspeedup x shard=1 or
//	                           # the bounds never stopped a shard early
//	raqo-bench -anyk           # any-k enumeration vs MultiHRJN sweep over
//	                           # join width x k with three-way correctness
//	                           # checking, written to BENCH_anyk.json; exits
//	                           # nonzero when the answers diverge or no sweep
//	                           # point shows any-k beating MultiHRJN by
//	                           # -minanykspeedup
//	raqo-bench -planner        # two-speed planner comparison: DP vs greedy
//	                           # planning wall time and chosen-plan cost over
//	                           # a selectivity sweep, with executed top-k
//	                           # parity, written to BENCH_planner.json; exits
//	                           # nonzero when the greedy path plans less than
//	                           # -minplanspeedup times faster, any greedy
//	                           # plan costs more than 1+-maxqualityloss of
//	                           # the DP's, the answers diverge, or greedy
//	                           # silently fell back to the DP
//	raqo-bench -bench-all      # run every registered benchmark mode with its
//	                           # default artifact path and write a
//	                           # BENCH_index.json manifest recording each
//	                           # bench's artifact and gate outcome; exits
//	                           # nonzero when any bench fails
//
// The -concurrency mode runs a fixed batch of top-k sessions over one shared
// catalog at each worker count (-workers, default 1,2,4,8), prints the
// resulting table, and writes the JSON artifact to -out.
//
// The -plancache mode replays one repeated-query batch against a
// cache-disabled engine (cold: parse + optimize every session) and a primed
// cache-enabled engine (warm: plan-cache hit every session), reporting
// throughput and allocations per query for both.
//
// The -analyze mode executes the canonical ranked-join shapes at several k
// values with EXPLAIN ANALYZE instrumentation, compares each rank-join's
// Section-4 depth estimates against the executed depths, and gates on the
// mean relative error — CI's depth-model regression smoke test.
//
// The -trace mode replays one repeated-query batch through a primed engine
// with tracing off (the production hot path) and with a span recorder on
// every session, reporting qps and allocations per query for both sides —
// CI's tracing-overhead smoke test. The off side is the number to compare
// across revisions; the gate requires the traced side to actually record
// spans and decisions and to stay under -maxslowdown.
//
// The -batch mode drains the vectorized operator pipelines (scan, filter,
// projection, hash join) one tuple per Next and batch-at-a-time over the same
// inputs, reports the speedups, and gates on exact tuple-level parity between
// the two executor paths. Speedups are single-threaded ratios, so they remain
// meaningful at GOMAXPROCS=1; a warning still flags single-CPU runs so the
// artifact's context is visible in CI logs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"rankopt/internal/bench"
)

func main() {
	var (
		concurrency  = flag.Bool("concurrency", false, "run the concurrent-session throughput sweep")
		plancache    = flag.Bool("plancache", false, "run the plan-cache cold/warm sweep")
		analyze      = flag.Bool("analyze", false, "run the depth-model accuracy sweep")
		cancelBench  = flag.Bool("cancel", false, "run the cancellation-under-load latency benchmark")
		traceBench   = flag.Bool("trace", false, "run the tracing on/off overhead comparison")
		batchBench   = flag.Bool("batch", false, "run the batch vs per-tuple executor comparison")
		shardBench   = flag.Bool("shard", false, "run the sharded scatter-gather scaling sweep")
		planBench    = flag.Bool("planner", false, "run the DP vs greedy planner comparison")
		anykBench    = flag.Bool("anyk", false, "run the any-k vs MultiHRJN operator sweep")
		minSpeedup   = flag.Float64("minspeedup", 1.5, "fail when shard=4 qps is below this multiple of shard=1 (-shard)")
		minPlanSpd   = flag.Float64("minplanspeedup", 10.0, "fail when greedy planning is below this speedup over the DP (-planner)")
		minAnyKSpd   = flag.Float64("minanykspeedup", 1.5, "fail when no sweep point shows any-k beating MultiHRJN by this factor (-anyk)")
		maxQuality   = flag.Float64("maxqualityloss", 0.2, "fail when a greedy plan costs more than 1+this times the DP plan (-planner)")
		maxErr       = flag.Float64("maxerr", 3.0, "fail when the sweep's mean relative depth error exceeds this (-analyze)")
		maxSlowdown  = flag.Float64("maxslowdown", 50.0, "fail when traced sessions are this many times slower than untraced (-trace)")
		maxShardSlow = flag.Float64("maxshardslowdown", 1.5, "fail when traced sharded sessions are this many times slower than untraced (-trace)")
		benchAll     = flag.Bool("bench-all", false, "run every benchmark mode and write a BENCH_index.json manifest")
		out          = flag.String("out", "", "artifact path (defaults per mode)")
		rows         = flag.Int("rows", 0, "override rows per table (sweep modes)")
		queries      = flag.Int("queries", 0, "override sessions per point (sweep modes)")
		workers      = flag.String("workers", "", "override comma-separated worker counts (sweeps) or one lane count (-cancel)")
		optWorkers   = flag.Int("opt-workers", 0, "optimizer DP workers per session (-concurrency)")
	)
	flag.Parse()

	if *concurrency {
		path := *out
		if path == "" {
			path = "BENCH_throughput.json"
		}
		if err := runConcurrency(path, *rows, *queries, *workers, *optWorkers); err != nil {
			fmt.Fprintln(os.Stderr, "raqo-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *plancache {
		path := *out
		if path == "" {
			path = "BENCH_plancache.json"
		}
		if err := runPlanCache(path, *rows, *queries, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "raqo-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *analyze {
		path := *out
		if path == "" {
			path = "BENCH_analyze.json"
		}
		if err := runAnalyze(path, *rows, *maxErr); err != nil {
			fmt.Fprintln(os.Stderr, "raqo-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *traceBench {
		path := *out
		if path == "" {
			path = "BENCH_trace.json"
		}
		if err := runTrace(path, *rows, *queries, *maxSlowdown, *maxShardSlow); err != nil {
			fmt.Fprintln(os.Stderr, "raqo-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *batchBench {
		path := *out
		if path == "" {
			path = "BENCH_batch.json"
		}
		if err := runBatch(path, *rows); err != nil {
			fmt.Fprintln(os.Stderr, "raqo-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *shardBench {
		path := *out
		if path == "" {
			path = "BENCH_shard.json"
		}
		if err := runShard(path, *rows, *queries, *minSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "raqo-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *planBench {
		path := *out
		if path == "" {
			path = "BENCH_planner.json"
		}
		if err := runPlanner(path, *rows, *minPlanSpd, *maxQuality); err != nil {
			fmt.Fprintln(os.Stderr, "raqo-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *anykBench {
		path := *out
		if path == "" {
			path = "BENCH_anyk.json"
		}
		if err := runAnyK(path, *rows, *minAnyKSpd); err != nil {
			fmt.Fprintln(os.Stderr, "raqo-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *cancelBench {
		path := *out
		if path == "" {
			path = "BENCH_cancel.json"
		}
		if err := runCancel(path, *rows, *queries, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "raqo-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *benchAll {
		if err := runBenchAll(*maxErr, *maxSlowdown, *maxShardSlow, *minSpeedup, *minPlanSpd, *maxQuality, *minAnyKSpd); err != nil {
			fmt.Fprintln(os.Stderr, "raqo-bench:", err)
			os.Exit(1)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("usage: raqo-bench all | <experiment>... | -concurrency | -plancache | -analyze | -cancel | -trace | -batch | -shard | -planner | -anyk")
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-10s %s\n", e.Name, e.What)
		}
		return
	}
	var exps []bench.Experiment
	if len(args) == 1 && args[0] == "all" {
		exps = bench.All()
	} else {
		for _, name := range args {
			e, err := bench.ByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Println(tab)
	}
}

func runConcurrency(out string, rows, queries int, workers string, optWorkers int) error {
	cfg := bench.DefaultThroughputConfig()
	if rows > 0 {
		cfg.Rows = rows
	}
	if queries > 0 {
		cfg.Queries = queries
	}
	if optWorkers > 0 {
		cfg.OptWorkers = optWorkers
	}
	if workers != "" {
		cfg.Workers = nil
		for _, f := range strings.Split(workers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -workers value %q", f)
			}
			cfg.Workers = append(cfg.Workers, n)
		}
	}
	rep, err := bench.Throughput(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep.Table())
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func runAnalyze(out string, rows int, maxErr float64) error {
	cfg := bench.DefaultAnalyzeConfig()
	if rows > 0 {
		cfg.Rows = rows
	}
	rep, err := bench.Analyze(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep.Table())
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return rep.CheckBound(maxErr)
}

func runTrace(out string, rows, queries int, maxSlowdown, maxShardSlowdown float64) error {
	cfg := bench.DefaultTraceOverheadConfig()
	if rows > 0 {
		cfg.Rows = rows
	}
	if queries > 0 {
		cfg.Queries = queries
	}
	rep, err := bench.TraceOverhead(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep.Table())
	if sht := rep.ShardedTable(); sht != nil {
		fmt.Println(sht)
	}
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if err := rep.CheckOverhead(maxSlowdown); err != nil {
		return err
	}
	return rep.CheckShardedOverhead(maxShardSlowdown)
}

func runBatch(out string, rows int) error {
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(os.Stderr, "raqo-bench: warning: GOMAXPROCS=1 — parallel speedups are invisible on this run; batch-vs-tuple ratios are single-threaded and remain valid (the artifact records gomaxprocs and cpus, so the run's context is machine-readable)")
	}
	cfg := bench.DefaultBatchConfig()
	if rows > 0 {
		cfg.Rows = rows
	}
	rep, err := bench.BatchExec(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep.Table())
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	// The parity gate: a divergence between the executor paths fails the run.
	return rep.CheckParity()
}

func runShard(out string, rows, queries int, minSpeedup float64) error {
	cfg := bench.DefaultShardConfig()
	if rows > 0 {
		cfg.Rows = rows
	}
	if queries > 0 {
		cfg.Queries = queries
	}
	rep, err := bench.Shard(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep.Table())
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	// The scaling gate: shard=4 must beat shard=1 by minSpeedup with a
	// nonzero early-stop rate.
	return rep.CheckScaling(minSpeedup)
}

func runPlanner(out string, rows int, minSpeedup, maxQualityLoss float64) error {
	cfg := bench.DefaultPlannerConfig()
	if rows > 0 {
		cfg.Rows = rows
	}
	rep, err := bench.Planner(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep.Table())
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	// The two-speed gate: greedy must earn its keep on planning time without
	// giving up plan quality or answer correctness.
	return rep.CheckGates(minSpeedup, maxQualityLoss)
}

func runAnyK(out string, rows int, minSpeedup float64) error {
	cfg := bench.DefaultAnyKConfig()
	if rows > 0 {
		cfg.Rows = rows
	}
	rep, err := bench.AnyK(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep.Table())
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	// The crossover gate: the answers must agree everywhere and any-k must
	// win somewhere, or the DP has nothing to bank on when it picks AnyK.
	return rep.CheckGates(minSpeedup)
}

func runCancel(out string, rows, sessions int, workers string) error {
	cfg := bench.DefaultCancelConfig()
	if rows > 0 {
		cfg.Rows = rows
	}
	if sessions > 0 {
		cfg.Sessions = sessions
	}
	if workers != "" {
		n, err := strconv.Atoi(strings.TrimSpace(workers))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -workers value %q (cancel mode takes one count)", workers)
		}
		cfg.Workers = n
	}
	rep, err := bench.Cancel(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep.Table())
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return rep.CheckTyped()
}

func runPlanCache(out string, rows, queries int, workers string) error {
	cfg := bench.DefaultPlanCacheConfig()
	if rows > 0 {
		cfg.Rows = rows
	}
	if queries > 0 {
		cfg.Queries = queries
	}
	if workers != "" {
		cfg.Workers = nil
		for _, f := range strings.Split(workers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -workers value %q", f)
			}
			cfg.Workers = append(cfg.Workers, n)
		}
	}
	rep, err := bench.PlanCache(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep.Table())
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// benchIndexEntry is one row of the BENCH_index.json manifest.
type benchIndexEntry struct {
	Name     string `json:"name"`
	Artifact string `json:"artifact"`
	OK       bool   `json:"ok"`
	Error    string `json:"error,omitempty"`
}

// runBenchAll runs every registered benchmark mode back to back with its
// default artifact path, then writes BENCH_index.json recording what ran and
// whether each gate held. All benches run even after a failure so one bad
// gate still leaves a complete set of artifacts; the first failure is
// returned at the end.
func runBenchAll(maxErr, maxSlowdown, maxShardSlowdown, minSpeedup, minPlanSpd, maxQuality, minAnyKSpd float64) error {
	benches := []struct {
		name     string
		artifact string
		run      func(string) error
	}{
		{"concurrency", "BENCH_throughput.json", func(p string) error { return runConcurrency(p, 0, 0, "", 0) }},
		{"plancache", "BENCH_plancache.json", func(p string) error { return runPlanCache(p, 0, 0, "") }},
		{"analyze", "BENCH_analyze.json", func(p string) error { return runAnalyze(p, 0, maxErr) }},
		{"trace", "BENCH_trace.json", func(p string) error { return runTrace(p, 0, 0, maxSlowdown, maxShardSlowdown) }},
		{"batch", "BENCH_batch.json", func(p string) error { return runBatch(p, 0) }},
		{"shard", "BENCH_shard.json", func(p string) error { return runShard(p, 0, 0, minSpeedup) }},
		{"planner", "BENCH_planner.json", func(p string) error { return runPlanner(p, 0, minPlanSpd, maxQuality) }},
		{"anyk", "BENCH_anyk.json", func(p string) error { return runAnyK(p, 0, minAnyKSpd) }},
		{"cancel", "BENCH_cancel.json", func(p string) error { return runCancel(p, 0, 0, "") }},
	}
	manifest := struct {
		GoMaxProcs int               `json:"gomaxprocs"`
		CPUs       int               `json:"cpus"`
		Benches    []benchIndexEntry `json:"benches"`
	}{GoMaxProcs: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU()}
	var firstFail error
	for _, b := range benches {
		fmt.Printf("=== bench %s -> %s ===\n", b.name, b.artifact)
		entry := benchIndexEntry{Name: b.name, Artifact: b.artifact, OK: true}
		if err := b.run(b.artifact); err != nil {
			entry.OK = false
			entry.Error = err.Error()
			fmt.Fprintf(os.Stderr, "raqo-bench: %s: %v\n", b.name, err)
			if firstFail == nil {
				firstFail = fmt.Errorf("%s: %w", b.name, err)
			}
		}
		manifest.Benches = append(manifest.Benches, entry)
	}
	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_index.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_index.json")
	return firstFail
}

package main

import (
	"strings"
	"testing"

	"rankopt/internal/core"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
	"rankopt/internal/workload"
)

// predLabel used to index EqPreds[0] unguarded, panicking on rank joins
// without equi-predicates (NRJN accepts residual-only predicates).
func TestPredLabelEqPredFreeNRJN(t *testing.T) {
	n := &plan.Node{
		Op:   plan.OpNRJN,
		Pred: expr.Bin(expr.OpLt, expr.Col("A", "key"), expr.Col("B", "key")),
	}
	if got := predLabel(n); !strings.Contains(got, "<") || got == "<no predicate>" {
		t.Errorf("residual-only label = %q, want the predicate text", got)
	}
	if got := predLabel(&plan.Node{Op: plan.OpNRJN}); got != "<no predicate>" {
		t.Errorf("bare node label = %q", got)
	}
	withEq := &plan.Node{
		Op:      plan.OpNRJN,
		EqPreds: []logical.JoinPred{{L: expr.Col("A", "key"), R: expr.Col("B", "key")}},
	}
	if got := predLabel(withEq); !strings.Contains(got, "A.key") {
		t.Errorf("equi-pred label = %q, want it to name A.key", got)
	}
}

// The full stats path: a ranked 2-table top-k query must execute and print
// the measured-vs-estimated depth report without panicking.
func TestRunQueryStatsPath(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 5000, Selectivity: 0.02, Seed: 31})
	var b strings.Builder
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5"
	if err := runQuery(&b, cat, sql, core.Options{}, false, 10, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "measured vs estimated") {
		t.Errorf("stats report missing from output:\n%s", out)
	}
	if !strings.Contains(out, "measured dL=") {
		t.Errorf("no per-join stats line in output:\n%s", out)
	}
	if !strings.Contains(out, "(5 rows)") {
		t.Errorf("expected 5 result rows:\n%s", out)
	}
}

// Explain-only mode must stop before execution.
func TestRunQueryExplainOnly(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 500, Selectivity: 0.05, Seed: 32})
	var b strings.Builder
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 3"
	if err := runQuery(&b, cat, sql, core.Options{}, true, 10, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "rows)") {
		t.Errorf("explain-only output contains result rows:\n%s", b.String())
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/engine"
	"rankopt/internal/workload"
)

func testREPLEngine(t *testing.T, tables, rows int, sel float64, seed int64) *engine.Engine {
	t.Helper()
	cat, _ := workload.RankedSet(tables, workload.RankedConfig{N: rows, Selectivity: sel, Seed: seed})
	return engine.New(cat, core.Options{})
}

// The full stats path: a ranked 2-table top-k query must execute and print
// the measured-vs-estimated depth report without panicking.
func TestRunQueryStatsPath(t *testing.T) {
	eng := testREPLEngine(t, 2, 5000, 0.02, 31)
	var b strings.Builder
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5"
	if err := runQuery(&b, eng, sql, queryOpts{MaxRows: 10, Stats: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "measured vs estimated") {
		t.Errorf("stats report missing from output:\n%s", out)
	}
	if !strings.Contains(out, "measured dL=") {
		t.Errorf("no per-join stats line in output:\n%s", out)
	}
	if !strings.Contains(out, "(5 rows)") {
		t.Errorf("expected 5 result rows:\n%s", out)
	}
}

// Explain-only mode must stop before execution.
func TestRunQueryExplainOnly(t *testing.T) {
	eng := testREPLEngine(t, 2, 500, 0.05, 32)
	var b strings.Builder
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 3"
	if err := runQuery(&b, eng, sql, queryOpts{Explain: true, MaxRows: 10}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "rows)") {
		t.Errorf("explain-only output contains result rows:\n%s", b.String())
	}
}

// The REPL shares one engine across statements, so a repeated statement must
// be served from the plan cache and say so, and \stats must report the
// counters.
func TestRunQueryPlanCacheAcrossStatements(t *testing.T) {
	eng := testREPLEngine(t, 2, 500, 0.05, 33)
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 3"
	var first, second strings.Builder
	if err := runQuery(&first, eng, sql, queryOpts{MaxRows: 10}); err != nil {
		t.Fatal(err)
	}
	if err := runQuery(&second, eng, sql, queryOpts{MaxRows: 10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "(plan cache miss)") {
		t.Errorf("first statement should miss:\n%s", first.String())
	}
	if !strings.Contains(second.String(), "(plan cache hit)") {
		t.Errorf("repeated statement should hit:\n%s", second.String())
	}
	var stats strings.Builder
	printCacheStats(&stats, eng)
	out := stats.String()
	if !strings.Contains(out, "hits=1") || !strings.Contains(out, "misses=1") {
		t.Errorf(`\stats output = %q, want hits=1 misses=1`, out)
	}
}

// The acceptance path: \analyze on a 3-way rank-join query must print
// per-operator actual depths alongside the EstDL/EstDR estimates with
// relative errors, plus the sampled per-operator times.
func TestRunQueryAnalyzeThreeWay(t *testing.T) {
	eng := testREPLEngine(t, 3, 2000, 0.01, 11)
	var b strings.Builder
	sql := "SELECT * FROM T1, T2, T3 WHERE T1.key = T2.key AND T2.key = T3.key ORDER BY T1.score + T2.score + T3.score DESC LIMIT 10"
	if err := runQuery(&b, eng, sql, queryOpts{Analyze: true, MaxRows: 5}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "EXPLAIN ANALYZE (k=10)") {
		t.Errorf("analyze header missing:\n%s", out)
	}
	if got := strings.Count(out, "depths: dL est="); got != 2 {
		t.Errorf("want 2 rank-join depth lines (3-way join), got %d:\n%s", got, out)
	}
	for _, want := range []string{"act=", "err=", "queue hwm=", "(open=", "next≈", "(10 rows)"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}

// The traced path: \trace (and EXPLAIN TRACE) on a 3-way rank-join query
// must render the optimizer decision trace and the query span tree, skip
// the result rows, and honor -trace-json with a valid Chrome export.
func TestRunQueryTrace(t *testing.T) {
	eng := testREPLEngine(t, 3, 1000, 0.02, 21)
	sql := "SELECT * FROM T1, T2, T3 WHERE T1.key = T2.key AND T2.key = T3.key ORDER BY T1.score + T2.score + T3.score DESC LIMIT 10"
	jsonPath := filepath.Join(t.TempDir(), "trace.json")
	var b strings.Builder
	if err := runQuery(&b, eng, sql, queryOpts{Trace: true, TraceJSON: jsonPath, MaxRows: 5}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"optimizer decision trace",
		"interesting orders:",
		"pruned:",
		"(First-N-Rows)",
		"k*=",
		"trace: SELECT",
		"execute",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%.800s", want, out)
		}
	}
	if strings.Contains(out, "rows)") {
		t.Errorf("trace output contains result rows:\n%s", out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Errorf("-trace-json wrote invalid JSON:\n%.200s", data)
	}
}

// EXPLAIN TRACE prefix detection must be case-insensitive and leave plain
// statements alone.
func TestTrimExplainTrace(t *testing.T) {
	if got, ok := trimExplainTrace("explain trace SELECT 1"); !ok || got != "SELECT 1" {
		t.Errorf("trimExplainTrace lowercase = %q, %v", got, ok)
	}
	if got, ok := trimExplainTrace("EXPLAIN TRACE  SELECT 1"); !ok || got != "SELECT 1" {
		t.Errorf("trimExplainTrace uppercase = %q, %v", got, ok)
	}
	if _, ok := trimExplainTrace("SELECT * FROM T1"); ok {
		t.Error("trimExplainTrace matched a plain statement")
	}
}

// \metrics must report the counters of the statements the session ran.
func TestPrintMetrics(t *testing.T) {
	eng := testREPLEngine(t, 2, 500, 0.05, 34)
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 3"
	var b strings.Builder
	if err := runQuery(&b, eng, sql, queryOpts{MaxRows: 10}); err != nil {
		t.Fatal(err)
	}
	if err := runQuery(&b, eng, sql, queryOpts{Analyze: true, MaxRows: 10}); err != nil {
		t.Fatal(err)
	}
	var m strings.Builder
	printMetrics(&m, eng)
	out := m.String()
	if !strings.Contains(out, "queries=2") || !strings.Contains(out, "analyzed=1") {
		t.Errorf(`\metrics output = %q, want queries=2 analyzed=1`, out)
	}
	if !strings.Contains(out, "plan cache:") || !strings.Contains(out, "latency:") {
		t.Errorf(`\metrics output missing sections: %q`, out)
	}
}

// TestPrintQueries renders the registry after one finished session; the row
// must carry the terminal state and the truncated SQL.
func TestPrintQueries(t *testing.T) {
	eng := testREPLEngine(t, 2, 500, 0.05, 35)
	var b strings.Builder
	printQueries(&b, eng)
	if got := b.String(); got != "no sessions\n" {
		t.Fatalf("empty registry rendered %q", got)
	}
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 4"
	if err := runQuery(&b, eng, sql, queryOpts{MaxRows: 5}); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	printQueries(&b, eng)
	out := b.String()
	for _, want := range []string{"[done]", "emitted=4/4", "SELECT * FROM T1, T2"} {
		if !strings.Contains(out, want) {
			t.Errorf("\\queries output missing %q:\n%s", want, out)
		}
	}
}

// TestRunQueryShardedAnalyze drives the REPL path a -shards session takes:
// EXPLAIN ANALYZE on a sharded engine must render the coordinator header and
// per-shard table instead of the single-tree format.
func TestRunQueryShardedAnalyze(t *testing.T) {
	cat, names := workload.RankedSet(2, workload.RankedConfig{N: 800, Selectivity: 0.02, Seed: 36})
	for _, name := range names {
		spec := catalog.PartitionSpec{Column: "key", Kind: catalog.PartitionHash}
		if err := cat.SetPartition(name, spec); err != nil {
			t.Fatal(err)
		}
	}
	eng := engine.NewWithConfig(cat, engine.Config{Shards: 2})
	if err := eng.ShardError(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5"
	if err := runQuery(&b, eng, sql, queryOpts{MaxRows: 5, Analyze: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"sharded over 2 shards", "ShardMerge", "shard 0:", "ceiling est="} {
		if !strings.Contains(out, want) {
			t.Errorf("sharded analyze output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "(5 rows)") {
		t.Errorf("result rows missing:\n%s", out)
	}
}

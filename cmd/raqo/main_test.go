package main

import (
	"strings"
	"testing"

	"rankopt/internal/core"
	"rankopt/internal/engine"
	"rankopt/internal/workload"
)

func testREPLEngine(t *testing.T, tables, rows int, sel float64, seed int64) *engine.Engine {
	t.Helper()
	cat, _ := workload.RankedSet(tables, workload.RankedConfig{N: rows, Selectivity: sel, Seed: seed})
	return engine.New(cat, core.Options{})
}

// The full stats path: a ranked 2-table top-k query must execute and print
// the measured-vs-estimated depth report without panicking.
func TestRunQueryStatsPath(t *testing.T) {
	eng := testREPLEngine(t, 2, 5000, 0.02, 31)
	var b strings.Builder
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5"
	if err := runQuery(&b, eng, sql, false, 10, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "measured vs estimated") {
		t.Errorf("stats report missing from output:\n%s", out)
	}
	if !strings.Contains(out, "measured dL=") {
		t.Errorf("no per-join stats line in output:\n%s", out)
	}
	if !strings.Contains(out, "(5 rows)") {
		t.Errorf("expected 5 result rows:\n%s", out)
	}
}

// Explain-only mode must stop before execution.
func TestRunQueryExplainOnly(t *testing.T) {
	eng := testREPLEngine(t, 2, 500, 0.05, 32)
	var b strings.Builder
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 3"
	if err := runQuery(&b, eng, sql, true, 10, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "rows)") {
		t.Errorf("explain-only output contains result rows:\n%s", b.String())
	}
}

// The REPL shares one engine across statements, so a repeated statement must
// be served from the plan cache and say so, and \stats must report the
// counters.
func TestRunQueryPlanCacheAcrossStatements(t *testing.T) {
	eng := testREPLEngine(t, 2, 500, 0.05, 33)
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 3"
	var first, second strings.Builder
	if err := runQuery(&first, eng, sql, false, 10, false); err != nil {
		t.Fatal(err)
	}
	if err := runQuery(&second, eng, sql, false, 10, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "(plan cache miss)") {
		t.Errorf("first statement should miss:\n%s", first.String())
	}
	if !strings.Contains(second.String(), "(plan cache hit)") {
		t.Errorf("repeated statement should hit:\n%s", second.String())
	}
	var stats strings.Builder
	printCacheStats(&stats, eng)
	out := stats.String()
	if !strings.Contains(out, "hits=1") || !strings.Contains(out, "misses=1") {
		t.Errorf(`\stats output = %q, want hits=1 misses=1`, out)
	}
}

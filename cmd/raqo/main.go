// Command raqo is an interactive front-end to the rank-aware optimizer: it
// loads a synthetic catalog, parses a top-k SQL query, prints the chosen
// execution plan (EXPLAIN), and executes it.
//
// Usage:
//
//	raqo [flags] "SQL"        # one-shot
//	raqo [flags]              # read statements from stdin, one per line
//
// Flags select the synthetic catalog: -tables m -rows n -selectivity s
// generates ranked tables T1..Tm (columns id, key, score) with score and key
// indexes; -corpus generates the multimedia feature corpus instead
// (ColorHist, ColorLayout, Texture, Edges with columns id, score).
//
// All statements in one process share a single engine, so repeated queries
// are served from its plan cache; `\stats` in the REPL reports the cache's
// hit/miss counters, `\metrics` the engine-wide session counters, and
// `\analyze <SQL>` executes a statement with EXPLAIN ANALYZE instrumentation
// (estimated vs actual cardinalities and rank-join depths, per-operator
// times). The -metrics flag additionally serves /metrics (Prometheus text),
// /debug/engine (JSON), and /debug/pprof over HTTP on the given address.
//
// Tracing: `EXPLAIN TRACE <SQL>` (or the REPL's `\trace <SQL>`, or the
// -trace flag) runs the statement as a traced session and renders the
// optimizer decision trace — per-MEMO-entry candidates, plans pruned and
// why (domination, crossover k*), First-N-Rows protections, interesting
// orders — followed by the query span tree (parse through per-operator
// execution). -trace-json additionally writes the session's Chrome
// trace-event JSON (loadable in Perfetto or chrome://tracing) to a file.
// -slowquery DUR logs sessions at or over the threshold to stderr as
// structured records with the SQL, latency, fingerprint, and abort cause.
//
// Queries can be bounded: -timeout sets a per-query deadline, and the REPL's
// `\set limits buffer=N depth=N timeout=DUR` caps buffered tuples, rank-join
// input depths, and wall-clock per session (`\set limits off` clears them).
// Exceeding a bound aborts just that query with a typed error; the engine
// stays usable.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/engine"
	"rankopt/internal/exec"
	"rankopt/internal/plan"
	"rankopt/internal/trace"
	"rankopt/internal/workload"
)

func main() {
	var (
		tables      = flag.Int("tables", 3, "number of synthetic ranked tables T1..Tm")
		rows        = flag.Int("rows", 10000, "rows per table")
		selectivity = flag.Float64("selectivity", 0.01, "join selectivity on the key columns")
		seed        = flag.Int64("seed", 1, "generator seed")
		corpus      = flag.Bool("corpus", false, "load the multimedia feature corpus instead")
		explainOnly = flag.Bool("explain", false, "print the plan without executing")
		maxRows     = flag.Int("maxrows", 20, "result rows to display")
		baseline    = flag.Bool("baseline", false, "disable rank-aware optimization")
		stats       = flag.Bool("stats", false, "after execution, report measured vs estimated rank-join depths")
		noCache     = flag.Bool("nocache", false, "disable the plan cache")
		analyze     = flag.Bool("analyze", false, "execute with EXPLAIN ANALYZE instrumentation")
		metricsAddr = flag.String("metrics", "", "serve /metrics, /debug/engine, and /debug/pprof over HTTP on this address (e.g. :8080)")
		timeout     = flag.Duration("timeout", 0, "per-query deadline, e.g. 500ms (0 = none)")
		traceFlag   = flag.Bool("trace", false, "run traced sessions: print the optimizer decision trace and query span tree")
		traceJSON   = flag.String("trace-json", "", "write each traced session's Chrome trace-event JSON to this file")
		slowQuery   = flag.Duration("slowquery", 0, "log sessions at or over this duration to stderr, e.g. 100ms (0 = off)")
		plannerMode = flag.String("planner", "dp", "join-order planner: dp (System-R memo) or greedy (no-stats fast path with DP fallback)")
		shards      = flag.Int("shards", 0, "serve from this many hash-partitioned shards (scatter-gather top-k tier; 0 = off)")
		feedback    = flag.Float64("depth-feedback", 0, "re-optimize a query when its measured rank-join depths exceed the estimates by this ratio (0 = off, try 2)")
	)
	flag.Parse()

	var cat *catalog.Catalog
	var names []string
	if *corpus {
		cat, names = workload.Corpus(workload.CorpusConfig{Objects: *rows, Features: 4, Seed: *seed})
	} else {
		cat, names = workload.RankedSet(*tables, workload.RankedConfig{
			N: *rows, Selectivity: *selectivity, Seed: *seed,
		})
	}
	fmt.Printf("loaded tables: %s (%d rows each)\n", strings.Join(names, ", "), *rows)

	planner, err := core.ParsePlannerMode(*plannerMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	cfg := engine.Config{
		Options:            core.Options{DisableRankAware: *baseline, Planner: planner},
		DisablePlanCache:   *noCache,
		DepthFeedbackRatio: *feedback,
		Shards:             *shards,
	}
	if *shards > 0 {
		// The sharded tier needs a partition spec per table: the ranked set
		// co-partitions on the join key, the corpus on the object id.
		col := "key"
		if *corpus {
			col = "id"
		}
		for _, name := range names {
			spec := catalog.PartitionSpec{Column: col, Kind: catalog.PartitionHash}
			if err := cat.SetPartition(name, spec); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(2)
			}
		}
	}
	if *slowQuery > 0 {
		cfg.SlowQuery = *slowQuery
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	eng := engine.NewWithConfig(cat, cfg)
	if *shards > 0 {
		if err := eng.ShardError(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(2)
		}
		fmt.Printf("sharded over %d shards\n", eng.ShardCount())
	}
	if *metricsAddr != "" {
		go func() {
			fmt.Printf("serving /metrics and /debug/engine on %s\n", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, eng.DebugMux()); err != nil {
				fmt.Fprintln(os.Stderr, "error: metrics server:", err)
			}
		}()
	}
	// limits and qTimeout are session state the REPL's `\set limits` command
	// mutates; the -timeout flag seeds the deadline for one-shot runs too.
	limits := exec.ResourceLimits{}
	qTimeout := *timeout
	run := func(sql string, analyzed, traced bool) {
		// `EXPLAIN TRACE <SQL>` is sugar for a traced session.
		if rest, ok := trimExplainTrace(sql); ok {
			sql, traced = rest, true
		}
		opts := queryOpts{
			Explain: *explainOnly, Analyze: analyzed, MaxRows: *maxRows, Stats: *stats,
			Trace: traced, TraceJSON: *traceJSON,
			Timeout: qTimeout, Limits: limits,
		}
		if err := runQuery(os.Stdout, eng, sql, opts); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
	if flag.NArg() > 0 {
		run(strings.Join(flag.Args(), " "), *analyze, *traceFlag)
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("raqo> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\stats`:
			printCacheStats(os.Stdout, eng)
		case line == `\metrics`:
			printMetrics(os.Stdout, eng)
		case line == `\queries`:
			printQueries(os.Stdout, eng)
		case strings.HasPrefix(line, `\analyze `):
			run(strings.TrimSpace(strings.TrimPrefix(line, `\analyze `)), true, false)
		case strings.HasPrefix(line, `\trace `):
			run(strings.TrimSpace(strings.TrimPrefix(line, `\trace `)), false, true)
		case strings.HasPrefix(line, `\set limits`):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\set limits`))
			if err := parseLimits(arg, &limits, &qTimeout); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				printLimits(os.Stdout, limits, qTimeout)
			}
		default:
			run(line, *analyze, *traceFlag)
		}
		fmt.Print("raqo> ")
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "error: reading stdin:", err)
		os.Exit(1)
	}
}

// printCacheStats renders the engine's plan-cache counters (the REPL's
// `\stats` command).
func printCacheStats(w io.Writer, eng *engine.Engine) {
	st := eng.CacheStats()
	fmt.Fprintf(w, "plan cache: hits=%d misses=%d invalidations=%d entries=%d\n",
		st.Hits, st.Misses, st.Invalidations, st.Entries)
}

// printMetrics renders the engine-wide session counters (the REPL's
// `\metrics` command).
func printMetrics(w io.Writer, eng *engine.Engine) {
	m := eng.Snapshot()
	fmt.Fprintf(w, "sessions: queries=%d errors=%d analyzed=%d tuples=%d\n",
		m.Queries, m.Errors, m.Analyzed, m.TuplesReturned)
	fmt.Fprintf(w, "aborted: cancelled=%d deadline=%d over-budget=%d admission-timeout=%d (waiting=%d in-flight=%d)\n",
		m.QueriesCancelled, m.QueriesDeadlined, m.QueriesOverBudget,
		m.AdmissionTimeouts, m.AdmissionWaiting, m.InFlight)
	fmt.Fprintf(w, "latency: avg=%.3fms p50=%.3fms p99=%.3fms\n",
		m.AvgLatencyMillis, m.P50LatencyMillis, m.P99LatencyMillis)
	fmt.Fprintf(w, "plan cache: hits=%d misses=%d invalidations=%d entries=%d\n",
		m.CacheHits, m.CacheMisses, m.CacheInvalidations, m.CacheEntries)
	fmt.Fprintf(w, "optimizer: runs=%d generated=%d pruned=%d protected=%d traced=%d slow=%d anyk-plans=%d\n",
		m.OptimizerRuns, m.PlansGenerated, m.PlansPruned, m.PlansProtected,
		m.TracedQueries, m.SlowQueries, m.AnyKPlans)
	fmt.Fprintf(w, "depth feedback: observations=%d accepted=%d replans=%d\n",
		m.DepthObservations, m.DepthAccepted, m.DepthReplans)
	if m.ShardedQueries > 0 || m.ShardFallbacks > 0 {
		fmt.Fprintf(w, "sharded: queries=%d fallbacks=%d%s started=%d pruned=%d early-stopped=%d saved=%d\n",
			m.ShardedQueries, m.ShardFallbacks, reasonSuffix(m.ShardFallbacksByReason),
			m.ShardsStarted, m.ShardsPruned, m.ShardsEarlyStopped, m.ShardTuplesSaved)
	}
	if len(m.GreedyFallbacksByReason) > 0 {
		var total uint64
		for _, v := range m.GreedyFallbacksByReason {
			total += v
		}
		fmt.Fprintf(w, "greedy fallbacks: total=%d%s\n", total, reasonSuffix(m.GreedyFallbacksByReason))
	}
	for _, op := range m.Operators {
		if op.DepthCount == 0 && op.LatencyCount == 0 {
			continue
		}
		fmt.Fprintf(w, "op %s: depth n=%d p50=%.0f p99=%.0f | latency n=%d p50=%.3fms p99=%.3fms\n",
			op.Op, op.DepthCount, op.DepthP50, op.DepthP99,
			op.LatencyCount, op.LatencyP50Millis, op.LatencyP99Millis)
	}
	fmt.Fprintf(w, "runtime: goroutines=%d heap=%dKB objects=%d gc=%d pause-p99=%.0fµs\n",
		m.Runtime.Goroutines, m.Runtime.HeapAllocBytes/1024, m.Runtime.HeapObjects,
		m.Runtime.GCCycles, m.Runtime.GCPauseP99Micros)
}

// reasonSuffix renders a non-zero reason->count map as " (a=1 b=2)" with
// stable (sorted) key order, or "" when everything is zero.
func reasonSuffix(byReason map[string]uint64) string {
	keys := make([]string, 0, len(byReason))
	for k, v := range byReason {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, byReason[k])
	}
	return " (" + strings.Join(parts, " ") + ")"
}

// printQueries renders the live query registry (the REPL's `\queries`
// command): running sessions with their rank-aware progress, then recently
// finished ones.
func printQueries(w io.Writer, eng *engine.Engine) {
	qs := eng.Queries()
	if len(qs) == 0 {
		fmt.Fprintln(w, "no sessions")
		return
	}
	for _, q := range qs {
		line := fmt.Sprintf("#%d [%s] %.1fms", q.ID, q.State, q.ElapsedMillis)
		if q.ClientID != "" {
			line += " client=" + q.ClientID
		}
		if q.K > 0 {
			line += fmt.Sprintf(" emitted=%d/%d", q.Emitted, q.K)
		} else {
			line += fmt.Sprintf(" emitted=%d", q.Emitted)
		}
		if q.KthScore != nil {
			line += fmt.Sprintf(" kth=%.3f", *q.KthScore)
		}
		if q.MergeBound != nil {
			line += fmt.Sprintf(" bound=%.3f", *q.MergeBound)
		}
		if q.Sharded {
			line += fmt.Sprintf(" shards=%d/%d done (%d live)", q.ShardsDone, q.ShardsTotal, q.ShardsLive)
		}
		sql := q.SQL
		if len(sql) > 60 {
			sql = sql[:57] + "..."
		}
		if q.Error != "" {
			line += " error=" + q.Error
		}
		fmt.Fprintf(w, "%s  %s\n", line, sql)
	}
}

// parseLimits applies a `\set limits` argument string to the session state.
// Syntax: space-separated key=value pairs among buffer=N (max buffered
// tuples), depth=N (max rank-join depth per input), timeout=DUR (per-query
// deadline, Go duration syntax); the single word "off" clears everything.
func parseLimits(arg string, limits *exec.ResourceLimits, qTimeout *time.Duration) error {
	if arg == "off" {
		*limits = exec.ResourceLimits{}
		*qTimeout = 0
		return nil
	}
	if arg == "" {
		return nil // just print the current settings
	}
	for _, kv := range strings.Fields(arg) {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf(`\set limits: want key=value pairs (buffer=N depth=N timeout=DUR) or "off", got %q`, kv)
		}
		switch key {
		case "buffer":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf(`\set limits: bad buffer %q`, val)
			}
			limits.MaxBufferedTuples = n
		case "depth":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf(`\set limits: bad depth %q`, val)
			}
			limits.MaxDepthPerInput = n
		case "timeout":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf(`\set limits: bad timeout %q`, val)
			}
			*qTimeout = d
		default:
			return fmt.Errorf(`\set limits: unknown key %q (want buffer, depth, or timeout)`, key)
		}
	}
	return nil
}

// printLimits reports the active session limits.
func printLimits(w io.Writer, limits exec.ResourceLimits, qTimeout time.Duration) {
	render := func(n int64) string {
		if n == 0 {
			return "off"
		}
		return strconv.FormatInt(n, 10)
	}
	to := "off"
	if qTimeout > 0 {
		to = qTimeout.String()
	}
	fmt.Fprintf(w, "limits: buffer=%s depth=%s timeout=%s\n",
		render(limits.MaxBufferedTuples), render(limits.MaxDepthPerInput), to)
}

// trimExplainTrace strips a leading `EXPLAIN TRACE ` (any case) from the
// statement, reporting whether it was present.
func trimExplainTrace(sql string) (string, bool) {
	const prefix = "explain trace "
	if len(sql) > len(prefix) && strings.EqualFold(sql[:len(prefix)], prefix) {
		return strings.TrimSpace(sql[len(prefix):]), true
	}
	return sql, false
}

// queryOpts selects what runQuery renders beyond the result rows.
type queryOpts struct {
	// Explain stops before execution; Analyze executes with per-operator
	// instrumentation and renders the EXPLAIN ANALYZE tree.
	Explain, Analyze bool
	// Trace runs a traced session and renders the optimizer decision trace
	// and the query span tree instead of result rows; TraceJSON additionally
	// writes the Chrome trace-event export to the path.
	Trace     bool
	TraceJSON string
	MaxRows   int
	// Stats appends the measured-vs-estimated rank-join depth report.
	Stats bool
	// Timeout bounds the session wall-clock (0 = none); Limits caps its
	// buffered tuples and rank-join depths.
	Timeout time.Duration
	Limits  exec.ResourceLimits
}

// runQuery sends one statement through the shared engine and renders the
// response: plan (annotated with runtime stats under Analyze), optional depth
// stats, and result rows.
func runQuery(w io.Writer, eng *engine.Engine, sql string, o queryOpts) error {
	req := engine.Request{SQL: sql, ExplainOnly: o.Explain, Analyze: o.Analyze, Limits: o.Limits}
	var tr *trace.Trace
	if o.Trace || o.TraceJSON != "" {
		tr = trace.New(sql)
		req.Trace = tr
	}
	if o.Timeout > 0 {
		req.Deadline = time.Now().Add(o.Timeout)
	}
	resp := eng.Run(req)
	if resp.Err != nil {
		return resp.Err
	}
	cacheNote := "miss"
	if resp.CacheHit {
		cacheNote = "hit"
	}
	fmt.Fprintf(w, "plans generated=%d kept=%d (plan cache %s)\n",
		resp.PlansGenerated, resp.PlansKept, cacheNote)
	if o.Analyze && resp.ShardAnalysis != nil {
		fmt.Fprint(w, plan.FormatShardedAnalyze(resp.Plan, resp.ShardAnalysis, true))
	} else if o.Analyze && resp.Analysis != nil {
		fmt.Fprint(w, plan.FormatAnalyze(resp.Plan, resp.Analysis, true))
	} else {
		fmt.Fprint(w, plan.Explain(resp.Plan))
	}
	if o.TraceJSON != "" {
		if err := writeChromeTrace(o.TraceJSON, tr); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.TraceJSON)
	}
	if o.Trace {
		// A traced session reports the optimizer's decisions and the span
		// tree; result rows are beside the point.
		if resp.OptTrace != nil {
			fmt.Fprint(w, resp.OptTrace.Format())
		}
		fmt.Fprint(w, tr.Tree())
		return nil
	}
	if o.Explain {
		return nil
	}
	if o.Stats && len(resp.RankJoins) > 0 {
		fmt.Fprintln(w, "-- rank-join depths: measured vs estimated --")
		for _, rj := range resp.RankJoins {
			fmt.Fprintf(w, "%s(%s): measured dL=%d dR=%d buffer=%d | estimated dL=%.0f dR=%.0f\n",
				rj.Op, rj.Pred, rj.Stats.LeftDepth, rj.Stats.RightDepth, rj.Stats.MaxQueue,
				rj.EstDL, rj.EstDR)
		}
	}
	fmt.Fprintln(w, strings.Join(resp.Columns, " | "))
	for i, tup := range resp.Tuples {
		if i >= o.MaxRows {
			fmt.Fprintf(w, "... (%d more rows)\n", len(resp.Tuples)-o.MaxRows)
			break
		}
		var vals []string
		for _, v := range tup {
			vals = append(vals, v.String())
		}
		fmt.Fprintln(w, strings.Join(vals, " | "))
	}
	fmt.Fprintf(w, "(%d rows)\n", len(resp.Tuples))
	return nil
}

// writeChromeTrace exports the session's Chrome trace-event JSON.
func writeChromeTrace(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

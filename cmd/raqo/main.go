// Command raqo is an interactive front-end to the rank-aware optimizer: it
// loads a synthetic catalog, parses a top-k SQL query, prints the chosen
// execution plan (EXPLAIN), and executes it.
//
// Usage:
//
//	raqo [flags] "SQL"        # one-shot
//	raqo [flags]              # read statements from stdin, one per line
//
// Flags select the synthetic catalog: -tables m -rows n -selectivity s
// generates ranked tables T1..Tm (columns id, key, score) with score and key
// indexes; -corpus generates the multimedia feature corpus instead
// (ColorHist, ColorLayout, Texture, Edges with columns id, score).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/plan"
	"rankopt/internal/sqlparse"
	"rankopt/internal/workload"
)

func main() {
	var (
		tables      = flag.Int("tables", 3, "number of synthetic ranked tables T1..Tm")
		rows        = flag.Int("rows", 10000, "rows per table")
		selectivity = flag.Float64("selectivity", 0.01, "join selectivity on the key columns")
		seed        = flag.Int64("seed", 1, "generator seed")
		corpus      = flag.Bool("corpus", false, "load the multimedia feature corpus instead")
		explainOnly = flag.Bool("explain", false, "print the plan without executing")
		maxRows     = flag.Int("maxrows", 20, "result rows to display")
		baseline    = flag.Bool("baseline", false, "disable rank-aware optimization")
		stats       = flag.Bool("stats", false, "after execution, report measured vs estimated rank-join depths")
	)
	flag.Parse()

	var cat *catalog.Catalog
	var names []string
	if *corpus {
		cat, names = workload.Corpus(workload.CorpusConfig{Objects: *rows, Features: 4, Seed: *seed})
	} else {
		cat, names = workload.RankedSet(*tables, workload.RankedConfig{
			N: *rows, Selectivity: *selectivity, Seed: *seed,
		})
	}
	fmt.Printf("loaded tables: %s (%d rows each)\n", strings.Join(names, ", "), *rows)

	opts := core.Options{DisableRankAware: *baseline}
	run := func(sql string) {
		if err := runQuery(os.Stdout, cat, sql, opts, *explainOnly, *maxRows, *stats); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
	if flag.NArg() > 0 {
		run(strings.Join(flag.Args(), " "))
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("raqo> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			run(line)
		}
		fmt.Print("raqo> ")
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "error: reading stdin:", err)
		os.Exit(1)
	}
}

// predLabel names a rank-join for the stats report. An NRJN over a
// residual-only predicate has no equi-predicates, so EqPreds may be empty.
func predLabel(n *plan.Node) string {
	if len(n.EqPreds) > 0 {
		return n.EqPreds[0].String()
	}
	if n.Pred != nil {
		return n.Pred.String()
	}
	return "<no predicate>"
}

func runQuery(w io.Writer, cat *catalog.Catalog, sql string, opts core.Options, explainOnly bool, maxRows int, stats bool) error {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return err
	}
	res, err := core.Optimize(cat, q, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "plans generated=%d kept=%d\n", res.PlansGenerated, res.PlansKept)
	fmt.Fprint(w, plan.Explain(res.Best))
	if explainOnly {
		return nil
	}
	type rj struct {
		node *plan.Node
		op   exec.StatsReporter
	}
	var rankJoins []rj
	op, err := plan.CompileTraced(cat, res.Best, func(n *plan.Node, o exec.Operator) {
		if sr, ok := o.(exec.StatsReporter); ok && n.Op.IsRankJoin() {
			rankJoins = append(rankJoins, rj{n, sr})
		}
	})
	if err != nil {
		return err
	}
	tuples, err := exec.Collect(op)
	if err != nil {
		return err
	}
	if stats && len(rankJoins) > 0 {
		// Propagate the query's k down the plan to know each rank-join's
		// demand, then compare measured depths with the Section 4 estimate.
		kByNode := map[*plan.Node]float64{}
		rootK := float64(q.K)
		if rootK <= 0 {
			rootK = res.Best.Card
		}
		plan.PropagateK(res.Best, rootK, func(n *plan.Node, k float64) {
			kByNode[n] = k
		})
		fmt.Fprintln(w, "-- rank-join depths: measured vs estimated --")
		for _, r := range rankJoins {
			dL, dR := r.node.Depths(kByNode[r.node])
			st := r.op.Stats()
			fmt.Fprintf(w, "%s(%s): measured dL=%d dR=%d buffer=%d | estimated dL=%.0f dR=%.0f\n",
				r.node.Op, predLabel(r.node), st.LeftDepth, st.RightDepth, st.MaxQueue, dL, dR)
		}
	}
	sch := op.Schema()
	var cols []string
	for i := 0; i < sch.Len(); i++ {
		cols = append(cols, sch.Column(i).QualifiedName())
	}
	fmt.Fprintln(w, strings.Join(cols, " | "))
	for i, tup := range tuples {
		if i >= maxRows {
			fmt.Fprintf(w, "... (%d more rows)\n", len(tuples)-maxRows)
			break
		}
		var vals []string
		for _, v := range tup {
			vals = append(vals, v.String())
		}
		fmt.Fprintln(w, strings.Join(vals, " | "))
	}
	fmt.Fprintf(w, "(%d rows)\n", len(tuples))
	return nil
}

// Command raqo is an interactive front-end to the rank-aware optimizer: it
// loads a synthetic catalog, parses a top-k SQL query, prints the chosen
// execution plan (EXPLAIN), and executes it.
//
// Usage:
//
//	raqo [flags] "SQL"        # one-shot
//	raqo [flags]              # read statements from stdin, one per line
//
// Flags select the synthetic catalog: -tables m -rows n -selectivity s
// generates ranked tables T1..Tm (columns id, key, score) with score and key
// indexes; -corpus generates the multimedia feature corpus instead
// (ColorHist, ColorLayout, Texture, Edges with columns id, score).
//
// All statements in one process share a single engine, so repeated queries
// are served from its plan cache; `\stats` in the REPL reports the cache's
// hit/miss counters.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/engine"
	"rankopt/internal/plan"
	"rankopt/internal/workload"
)

func main() {
	var (
		tables      = flag.Int("tables", 3, "number of synthetic ranked tables T1..Tm")
		rows        = flag.Int("rows", 10000, "rows per table")
		selectivity = flag.Float64("selectivity", 0.01, "join selectivity on the key columns")
		seed        = flag.Int64("seed", 1, "generator seed")
		corpus      = flag.Bool("corpus", false, "load the multimedia feature corpus instead")
		explainOnly = flag.Bool("explain", false, "print the plan without executing")
		maxRows     = flag.Int("maxrows", 20, "result rows to display")
		baseline    = flag.Bool("baseline", false, "disable rank-aware optimization")
		stats       = flag.Bool("stats", false, "after execution, report measured vs estimated rank-join depths")
		noCache     = flag.Bool("nocache", false, "disable the plan cache")
	)
	flag.Parse()

	var cat *catalog.Catalog
	var names []string
	if *corpus {
		cat, names = workload.Corpus(workload.CorpusConfig{Objects: *rows, Features: 4, Seed: *seed})
	} else {
		cat, names = workload.RankedSet(*tables, workload.RankedConfig{
			N: *rows, Selectivity: *selectivity, Seed: *seed,
		})
	}
	fmt.Printf("loaded tables: %s (%d rows each)\n", strings.Join(names, ", "), *rows)

	eng := engine.NewWithConfig(cat, engine.Config{
		Options:          core.Options{DisableRankAware: *baseline},
		DisablePlanCache: *noCache,
	})
	run := func(sql string) {
		if err := runQuery(os.Stdout, eng, sql, *explainOnly, *maxRows, *stats); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
	if flag.NArg() > 0 {
		run(strings.Join(flag.Args(), " "))
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("raqo> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\stats`:
			printCacheStats(os.Stdout, eng)
		default:
			run(line)
		}
		fmt.Print("raqo> ")
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "error: reading stdin:", err)
		os.Exit(1)
	}
}

// printCacheStats renders the engine's plan-cache counters (the REPL's
// `\stats` command).
func printCacheStats(w io.Writer, eng *engine.Engine) {
	st := eng.CacheStats()
	fmt.Fprintf(w, "plan cache: hits=%d misses=%d invalidations=%d entries=%d\n",
		st.Hits, st.Misses, st.Invalidations, st.Entries)
}

// runQuery sends one statement through the shared engine and renders the
// response: plan, optional depth stats, and result rows.
func runQuery(w io.Writer, eng *engine.Engine, sql string, explainOnly bool, maxRows int, stats bool) error {
	resp := eng.Run(engine.Request{SQL: sql, ExplainOnly: explainOnly})
	if resp.Err != nil {
		return resp.Err
	}
	cacheNote := "miss"
	if resp.CacheHit {
		cacheNote = "hit"
	}
	fmt.Fprintf(w, "plans generated=%d kept=%d (plan cache %s)\n",
		resp.PlansGenerated, resp.PlansKept, cacheNote)
	fmt.Fprint(w, plan.Explain(resp.Plan))
	if explainOnly {
		return nil
	}
	if stats && len(resp.RankJoins) > 0 {
		fmt.Fprintln(w, "-- rank-join depths: measured vs estimated --")
		for _, rj := range resp.RankJoins {
			fmt.Fprintf(w, "%s(%s): measured dL=%d dR=%d buffer=%d | estimated dL=%.0f dR=%.0f\n",
				rj.Op, rj.Pred, rj.Stats.LeftDepth, rj.Stats.RightDepth, rj.Stats.MaxQueue,
				rj.EstDL, rj.EstDR)
		}
	}
	fmt.Fprintln(w, strings.Join(resp.Columns, " | "))
	for i, tup := range resp.Tuples {
		if i >= maxRows {
			fmt.Fprintf(w, "... (%d more rows)\n", len(resp.Tuples)-maxRows)
			break
		}
		var vals []string
		for _, v := range tup {
			vals = append(vals, v.String())
		}
		fmt.Fprintln(w, strings.Join(vals, " | "))
	}
	fmt.Fprintf(w, "(%d rows)\n", len(resp.Tuples))
	return nil
}

// Package rankopt's root benchmark suite regenerates the paper's evaluation:
// one testing.B benchmark per figure/table (go test -bench=. -benchmem).
// Each benchmark runs the corresponding experiment from internal/bench and,
// on the first iteration, prints the regenerated table so benchmark runs
// double as the reproduction log.
package rankopt

import (
	"fmt"
	"sync"
	"testing"

	"rankopt/internal/bench"
)

var printOnce sync.Map

func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tab, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(name, true); !done {
			fmt.Println(tab)
		}
	}
}

func BenchmarkFig01SortVsRankJoinCost(b *testing.B)     { runExperiment(b, "fig1") }
func BenchmarkFig02MemoInterestingOrders(b *testing.B)  { runExperiment(b, "fig2") }
func BenchmarkFig03MemoRankAware(b *testing.B)          { runExperiment(b, "fig3") }
func BenchmarkTable1InterestingOrderExprs(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig04KPropagation(b *testing.B)           { runExperiment(b, "fig4") }
func BenchmarkFig06EffectOfK(b *testing.B)              { runExperiment(b, "fig6") }
func BenchmarkFig13DepthVsK(b *testing.B)               { runExperiment(b, "fig13") }
func BenchmarkFig14DepthVsSelectivity(b *testing.B)     { runExperiment(b, "fig14") }
func BenchmarkFig15BufferSize(b *testing.B)             { runExperiment(b, "fig15") }
func BenchmarkAblationPolling(b *testing.B)             { runExperiment(b, "polling") }
func BenchmarkAblationJoinChoices(b *testing.B)         { runExperiment(b, "joins") }
func BenchmarkAblationPruning(b *testing.B)             { runExperiment(b, "pruning") }
func BenchmarkAblationDistributions(b *testing.B)       { runExperiment(b, "dists") }
func BenchmarkAblationTopKSort(b *testing.B)            { runExperiment(b, "topksort") }
func BenchmarkAblationMultiwayHRJN(b *testing.B)        { runExperiment(b, "mway") }
func BenchmarkAblationRankAggregate(b *testing.B)       { runExperiment(b, "taplan") }

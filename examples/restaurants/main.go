// restaurants is the classic top-k join scenario from the rank-join
// literature: find the best hotel + restaurant pairs in the same city,
// ranked by a weighted combination of their ratings. It demonstrates
// CSV-loaded relations with string join keys flowing through the rank-aware
// optimizer.
package main

import (
	"fmt"
	"log"
	"strings"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/plan"
	"rankopt/internal/relation"
	"rankopt/internal/sqlparse"
)

const hotelsCSV = `name:STRING,city:STRING,rating:FLOAT
Grand Plaza,paris,4.7
Canal View,amsterdam,4.5
Sakura Inn,tokyo,4.9
Harbor Light,amsterdam,3.9
Le Meurice,paris,4.8
Shinjuku Rest,tokyo,4.2
Old Mill,bruges,4.4
`

const restaurantsCSV = `name:STRING,city:STRING,rating:FLOAT
Chez Lune,paris,4.9
Stroopwafel & Co,amsterdam,4.1
Ramen Koji,tokyo,4.8
De Vlam,bruges,4.6
Bistro 9,paris,4.3
Kaiseki Hana,tokyo,4.7
Pancake Boat,amsterdam,4.4
`

func main() {
	cat := catalog.New()
	for name, src := range map[string]string{
		"Hotels":      hotelsCSV,
		"Restaurants": restaurantsCSV,
	} {
		rel, err := relation.ReadCSV(strings.NewReader(src), name)
		if err != nil {
			log.Fatal(err)
		}
		cat.AddTable(rel)
		// Ranked access on ratings, hash/lookup access on the join key.
		for _, col := range []string{"rating", "city"} {
			if _, err := cat.CreateIndex(name, col, false); err != nil {
				log.Fatal(err)
			}
		}
	}

	sql := `SELECT * FROM Hotels, Restaurants
	        WHERE Hotels.city = Restaurants.city
	        ORDER BY 0.6*Hotels.rating + 0.4*Restaurants.rating DESC
	        LIMIT 5`
	q, err := sqlparse.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Optimize(cat, q, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:")
	fmt.Print(plan.Explain(res.Best))

	op, err := plan.Compile(cat, res.Best)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := exec.Collect(op)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop hotel + restaurant pairs:")
	for _, row := range rows {
		n := len(row)
		fmt.Printf("  %s. %-13s + %-16s (%s)  score %.2f\n",
			row[n-1], row[0].AsString(), row[3].AsString(),
			row[1].AsString(), row[n-2].AsFloat())
	}
}

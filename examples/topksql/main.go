// topksql runs the paper's example queries (Q1 and Q2 in spirit) through
// the SQL front-end: the SQL99 rank() OVER (ORDER BY ...) form is parsed,
// optimized by the rank-aware optimizer, and executed.
package main

import (
	"fmt"
	"log"
	"strings"

	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/plan"
	"rankopt/internal/sqlparse"
	"rankopt/internal/workload"
)

// Q1 mirrors the paper's Query Q1: a ranking over two of the three joined
// tables, expressed with the SQL99 window syntax.
const q1 = `
WITH RankedT AS (
    SELECT T1.id AS x, T2.id AS y,
           rank() OVER (ORDER BY (0.3*T1.score + 0.7*T2.score)) AS rank
    FROM T1, T2, T3
    WHERE T1.key = T2.key AND T2.key = T3.key)
SELECT x, y, rank FROM RankedT WHERE rank <= 5;`

// Q2 mirrors Query Q2: all three tables contribute to the ranking.
const q2 = `
WITH RankedT AS (
    SELECT T1.id AS x, T2.id AS y, T3.id AS z,
           rank() OVER (ORDER BY (0.3*T1.score + 0.3*T2.score + 0.3*T3.score)) AS rank
    FROM T1, T2, T3
    WHERE T1.key = T2.key AND T2.key = T3.key)
SELECT x, y, z, rank FROM RankedT WHERE rank <= 5;`

func main() {
	cat, _ := workload.RankedSet(3, workload.RankedConfig{
		N: 2000, Selectivity: 0.02, Seed: 3,
	})
	for name, sql := range map[string]string{"Q1": q1, "Q2": q2} {
		fmt.Printf("=== %s ===%s\n", name, sql)
		q, err := sqlparse.Parse(sql)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Optimize(cat, q, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("-- interesting order expressions (Table 1) --")
		for _, io := range res.InterestingOrders {
			fmt.Printf("   %-50s %s\n", io.Expr, strings.Join(io.Reasons, " and "))
		}
		fmt.Println("-- chosen plan --")
		fmt.Print(plan.Explain(res.Best))
		op, err := plan.Compile(cat, res.Best)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := exec.Collect(op)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("-- results --")
		for _, row := range rows {
			var vals []string
			for _, v := range row {
				vals = append(vals, v.String())
			}
			fmt.Println("   " + strings.Join(vals, " | "))
		}
		fmt.Println()
	}
}

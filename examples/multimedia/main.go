// Multimedia similarity search — the paper's motivating workload (its
// Query Q): "retrieve the k most similar video shots to a given image based
// on m visual features". Every feature (ColorHist, ColorLayout, Texture,
// Edges) ranks the same stored objects by one similarity score.
//
// The example answers the query two ways:
//
//  1. as a top-k *selection* with classic rank-aggregation algorithms (TA
//     and NRA) over the per-feature ranked lists, and
//  2. as a top-k *join* through the rank-aware optimizer, which builds a
//     pipeline of HRJN operators over the feature relations,
//
// then compares the access effort (depths) with the Section 4 estimate.
package main

import (
	"fmt"
	"log"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/estimate"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
	"rankopt/internal/ranking"
	"rankopt/internal/workload"
)

const (
	objects = 5000
	topK    = 10
)

func main() {
	cat, features := workload.Corpus(workload.CorpusConfig{
		Objects: objects, Features: 4, Seed: 99,
	})
	weights := []float64{0.4, 0.3, 0.2, 0.1}
	fmt.Printf("corpus: %d video objects, features %v, weights %v\n\n",
		objects, features, weights)

	topKSelection(cat, features, weights)
	topKJoin(cat, features, weights)
}

// topKSelection treats each feature relation as a ranked list of the same
// objects and aggregates with TA and NRA.
func topKSelection(cat *catalog.Catalog, features []string, weights []float64) {
	lists := make([]*ranking.ListSource, len(features))
	for i, f := range features {
		tab, err := cat.Table(f)
		if err != nil {
			log.Fatal(err)
		}
		ids := make([]int64, tab.Rel.Cardinality())
		scores := make([]float64, tab.Rel.Cardinality())
		for j, tup := range tab.Rel.Tuples() {
			ids[j] = tup[0].AsInt()
			scores[j] = tup[1].AsFloat()
		}
		lists[i] = ranking.NewListSource(ids, scores)
	}

	srcs := make([]ranking.Source, len(lists))
	for i, l := range lists {
		srcs[i] = l
	}
	taRes, taStats, err := ranking.TA(srcs, weights, topK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- top-k selection via TA (sorted + random access) --")
	for i, r := range taRes {
		fmt.Printf("  %2d. object %4d  score %.4f\n", i+1, r.ID, r.Score)
	}
	fmt.Printf("  effort: %d sorted + %d random accesses (naive scan: %d)\n\n",
		taStats.TotalSorted(), taStats.TotalRandom(), objects*len(features))

	for _, l := range lists {
		l.Reset()
	}
	sorted := make([]ranking.SortedAccess, len(lists))
	for i, l := range lists {
		sorted[i] = l
	}
	nraRes, nraStats, err := ranking.NRA(sorted, weights, topK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- top-k selection via NRA (sorted access only) --")
	fmt.Printf("  same top-%d set: %v\n", topK, sameSet(taRes, nraRes))
	fmt.Printf("  effort: %d sorted accesses\n\n", nraStats.TotalSorted())
}

// topKJoin runs the same similarity query through the rank-aware optimizer
// as a 4-way top-k join on object id.
func topKJoin(cat *catalog.Catalog, features []string, weights []float64) {
	q := &logical.Query{Tables: features, K: topK}
	for i, f := range features {
		q.Score.Terms = append(q.Score.Terms,
			expr.ScoreTerm{Weight: weights[i], E: expr.Col(f, "score")})
		if i > 0 {
			q.Joins = append(q.Joins, logical.JoinPred{
				L: expr.Col(features[i-1], "id"), R: expr.Col(f, "id"),
			})
		}
	}
	res, err := core.Optimize(cat, q, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- top-k join via the rank-aware optimizer --")
	fmt.Print(plan.Explain(res.Best))

	op, err := plan.Compile(cat, res.Best)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := exec.Collect(op)
	if err != nil {
		log.Fatal(err)
	}
	for i, row := range rows {
		n := len(row)
		fmt.Printf("  %2d. object %s  score %s\n", i+1, row[0], row[n-2])
	}

	// Estimate how deep a 4-way rank-join pipeline must read (id joins have
	// selectivity 1/objects).
	tree, err := estimate.LeftDeep(4, objects, 1.0/objects, 1.0/objects)
	if err != nil {
		log.Fatal(err)
	}
	if err := estimate.Propagate(tree, topK, estimate.ModeAvg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  estimated top rank-join depths for k=%d: dL=%.0f dR=%.0f (of %d tuples)\n",
		topK, tree.DL, tree.DR, objects)
}

func sameSet(a, b []ranking.Result) bool {
	set := map[int64]bool{}
	for _, r := range a {
		set[r.ID] = true
	}
	for _, r := range b {
		if !set[r.ID] {
			return false
		}
	}
	return true
}

// Quickstart: generate two ranked relations, ask the rank-aware optimizer
// for the top-5 join results by combined score, and inspect the chosen plan.
package main

import (
	"fmt"
	"log"

	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
	"rankopt/internal/workload"
)

func main() {
	// 1. Synthetic data: two tables T1, T2 of 10k rows with uniform scores,
	//    join keys tuned for selectivity 0.01, plus score and key indexes.
	cat, names := workload.RankedSet(2, workload.RankedConfig{
		N: 10000, Selectivity: 0.01, Seed: 7,
	})
	fmt.Println("tables:", names)

	// 2. The query: top-5 join results ranked on 0.4*T1.score + 0.6*T2.score.
	q := &logical.Query{
		Tables: []string{"T1", "T2"},
		Joins: []logical.JoinPred{
			{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")},
		},
		Score: expr.Sum(
			expr.ScoreTerm{Weight: 0.4, E: expr.Col("T1", "score")},
			expr.ScoreTerm{Weight: 0.6, E: expr.Col("T2", "score")},
		),
		K: 5,
	}

	// 3. Optimize: ranking is an interesting property, so the plan space
	//    includes rank-join (HRJN/NRJN) plans next to join-then-sort plans.
	res, err := core.Optimize(cat, q, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer: %d candidate plans, %d kept in MEMO\n",
		res.PlansGenerated, res.PlansKept)
	fmt.Print(plan.Explain(res.Best))

	// 4. Execute.
	op, err := plan.Compile(cat, res.Best)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := exec.Collect(op)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range rows {
		n := len(row)
		fmt.Printf("rank %s  score %s  (T1.id=%s, T2.id=%s)\n",
			row[n-1], row[n-2], row[0], row[3])
	}
}

// selectivity demonstrates the paper's Figure 1 and Figure 6 stories live:
// as join selectivity falls (or k grows), the optimizer's choice flips
// between the rank-join plan and the traditional join-then-sort plan, and
// the crossover point k* can be computed per plan pair.
package main

import (
	"fmt"
	"log"

	"rankopt/internal/core"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
	"rankopt/internal/workload"
)

func query() *logical.Query {
	return &logical.Query{
		Tables: []string{"T1", "T2"},
		Joins:  []logical.JoinPred{{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")}},
		Score: expr.Sum(
			expr.ScoreTerm{Weight: 1, E: expr.Col("T1", "score")},
			expr.ScoreTerm{Weight: 1, E: expr.Col("T2", "score")},
		),
		K: 10,
	}
}

func kindOf(n *plan.Node) string {
	if n.CountOps(plan.OpHRJN)+n.CountOps(plan.OpNRJN) == 0 {
		return "join-then-sort"
	}
	if n.CountOps(plan.OpSort) > 0 {
		return "rank-join (sort-fed)"
	}
	return "rank-join (pipelined)"
}

const n = 100000

func main() {
	fmt.Printf("top-10 query over two %d-row ranked tables; optimizer choice by selectivity:\n", n)
	fmt.Printf("%12s  %-14s  %s\n", "selectivity", "chosen plan", "estimated cost @k=10")
	for _, s := range []float64{0.0000001, 0.000001, 0.00001, 0.0001, 0.01} {
		cat, _ := workload.RankedSet(2, workload.RankedConfig{
			N: n, Selectivity: s, Seed: 21,
		})
		res, err := core.Optimize(cat, query(), core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.5f  %-14s  %.0f\n", s, kindOf(res.Best), res.Best.Cost(10))
	}

	fmt.Println("\nfixed selectivity 1e-5; optimizer choice by k (the Figure 6 story):")
	fmt.Printf("%8s  %-14s  %s\n", "k", "chosen plan", "estimated cost @k")
	for _, k := range []int{10, 25, 50, 100, 1000} {
		cat, _ := workload.RankedSet(2, workload.RankedConfig{
			N: n, Selectivity: 0.00001, Seed: 21,
		})
		q := query()
		q.K = k
		res, err := core.Optimize(cat, q, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %-14s  %.0f\n", k, kindOf(res.Best), res.Best.Cost(float64(k)))
	}

	// The k* crossover for one fixed instance: find a rank plan and a sort
	// plan among the optimizer's retained root plans and bisect.
	cat, _ := workload.RankedSet(2, workload.RankedConfig{
		N: n, Selectivity: 0.00001, Seed: 21,
	})
	res, err := core.Optimize(cat, query(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var rank, other *plan.Node
	for _, p := range res.Memo["T1,T2"] {
		if p.Op.IsRankJoin() && p.Props.Pipelined && rank == nil {
			rank = p
		}
		if !p.Op.IsRankJoin() && p.TotalCost() < 1e5 && other == nil {
			other = p
		}
	}
	if rank == nil || other == nil {
		fmt.Println("\nno plan pair retained for the crossover study")
		return
	}
	// Finish the traditional plan with the final sort enforcer, as the
	// optimizer's finish step would, then bisect for k*.
	sorted := &plan.Node{
		Op:       plan.OpSort,
		Children: []*plan.Node{other},
		Card:     other.Card,
		P:        rank.P,
		Props:    plan.Props{Order: plan.RankOrder("T1", "T2")},
	}
	kstar := core.CrossoverK(sorted, rank)
	fmt.Printf("\nretained plan pair at s=1e-5: pipelined rank-join vs sorted %s\n", other.Op)
	fmt.Printf("crossover k* = %.0f — below it the rank-join plan wins, above it sorting wins\n", kstar)
}

GO ?= go

.PHONY: all fmt vet build test race bench throughput plancache ci

all: ci

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Concurrent-session throughput sweep; emits BENCH_throughput.json.
throughput: build
	$(GO) run ./cmd/raqo-bench -concurrency -out BENCH_throughput.json

# Plan-cache cold/warm sweep; emits BENCH_plancache.json.
plancache: build
	$(GO) run ./cmd/raqo-bench -plancache -out BENCH_plancache.json

ci: fmt vet build race

GO ?= go

.PHONY: all fmt vet build test race bench bench-all throughput plancache oracle fuzz cancel trace batch shard planner anyk ci

all: ci

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Every registered benchmark mode back to back with default artifact paths;
# emits each BENCH_*.json plus a BENCH_index.json manifest recording which
# gates held. Exits nonzero when any gate fails (after running everything).
bench-all: build
	$(GO) run ./cmd/raqo-bench -bench-all

# Concurrent-session throughput sweep; emits BENCH_throughput.json.
throughput: build
	$(GO) run ./cmd/raqo-bench -concurrency -out BENCH_throughput.json

# Plan-cache cold/warm sweep; emits BENCH_plancache.json.
plancache: build
	$(GO) run ./cmd/raqo-bench -plancache -out BENCH_plancache.json

# Differential oracle, full 200-seed corpus (CI runs the -quick subset).
oracle:
	$(GO) test ./internal/oracle

# Short native-fuzz budget per sqlparse target.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=15s ./internal/sqlparse
	$(GO) test -run=NONE -fuzz=FuzzFingerprint -fuzztime=15s ./internal/sqlparse

# Cancellation-under-load latency bench; emits BENCH_cancel.json.
cancel: build
	$(GO) run ./cmd/raqo-bench -cancel -out BENCH_cancel.json

# Tracing on/off overhead comparison; emits BENCH_trace.json.
trace: build
	$(GO) run ./cmd/raqo-bench -trace -out BENCH_trace.json

# Batch vs per-tuple executor comparison with tuple-level parity gating;
# emits BENCH_batch.json and exits nonzero when the two paths diverge.
batch: build
	$(GO) run ./cmd/raqo-bench -batch -out BENCH_batch.json

# Sharded scatter-gather scaling sweep (shard counts 1/2/4/8 on the skewed
# range-partitioned workload); emits BENCH_shard.json and exits nonzero when
# shard=4 throughput is below 1.5x shard=1 or no shard was ever stopped early.
shard: build
	$(GO) run ./cmd/raqo-bench -shard -out BENCH_shard.json

# Two-speed planner comparison (DP vs greedy planning time, plan cost, and
# executed top-k parity); emits BENCH_planner.json and exits nonzero when the
# greedy path plans less than 10x faster, a greedy plan costs more than 1.2x
# the DP's, the answers diverge, or greedy silently fell back to the DP.
planner: build
	$(GO) run ./cmd/raqo-bench -planner -out BENCH_planner.json

# Any-k enumeration vs MultiHRJN operator sweep (width x k crossover with a
# three-way brute-force parity check); emits BENCH_anyk.json and exits nonzero
# when any answers diverge or no sweep point shows any-k at least 1.5x faster.
anyk: build
	$(GO) run ./cmd/raqo-bench -anyk -out BENCH_anyk.json

ci: fmt vet build race
	$(GO) test ./internal/oracle -quick
